//===-- support/Random.h - Deterministic pseudo-random numbers -*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 (seed expansion) and xoshiro256** (bulk generation). All
/// workloads and benchmark harnesses draw from these so that every run of an
/// experiment is reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_RANDOM_H
#define PTM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace ptm {

/// SplitMix64: tiny, fast generator used mainly to expand a user seed into
/// the larger xoshiro state. Sebastiano Vigna's public-domain reference.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256**: the project-wide PRNG. Not cryptographic; excellent
/// statistical quality for workload generation.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection-free mapping (bias is
  /// negligible for the bounds used in this project).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    // __extension__ keeps -Wpedantic quiet about the non-ISO __int128.
    __extension__ typedef unsigned __int128 Uint128;
    return static_cast<uint64_t>((static_cast<Uint128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ptm

#endif // PTM_SUPPORT_RANDOM_H
