//===-- support/Table.h - Aligned plain-text tables ------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer. Every benchmark harness reports its
/// experiment as one of these tables so the output reads like the series a
/// paper would plot.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_TABLE_H
#define PTM_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ptm {

class RawOStream;

/// Collects rows of string cells and prints them with columns aligned and a
/// rule under the header. Column 0 is left-aligned; the rest right-aligned
/// (the usual convention for label + numeric series).
class TablePrinter {
public:
  /// Creates a table whose header row is \p Columns.
  explicit TablePrinter(std::vector<std::string> Columns);

  /// Appends one data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Writes the table, followed by a blank line, to \p OS.
  void print(RawOStream &OS) const;

  /// Returns the number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ptm

#endif // PTM_SUPPORT_TABLE_H
