//===-- net/KvClient.cpp - Blocking + pipelined KV wire client ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "net/KvClient.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ptm;
using namespace ptm::net;
using kv::KvOp;
using kv::KvResponse;
using kv::KvStatus;

std::unique_ptr<KvClient> KvClient::connect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return nullptr;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return std::unique_ptr<KvClient>(new KvClient(Fd));
}

KvClient::~KvClient() { kill(); }

void KvClient::kill() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool KvClient::send(NetRequest &Req) {
  if (Fd < 0)
    return false;
  Req.Id = NextId++;
  std::vector<uint8_t> Frame;
  encodeRequest(Req, Frame);
  size_t Sent = 0;
  while (Sent < Frame.size()) {
    ssize_t N = ::send(Fd, Frame.data() + Sent, Frame.size() - Sent,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    kill();
    return false;
  }
  PendingIds.push_back(Req.Id);
  return true;
}

bool KvClient::receive(NetResponse &Resp) {
  if (Fd < 0 || PendingHead >= PendingIds.size())
    return false;
  for (;;) {
    size_t Consumed = 0;
    DecodeStatus S = decodeResponse(In.data() + InPos, In.size() - InPos,
                                    Consumed, Resp);
    if (S == DecodeStatus::Ok) {
      InPos += Consumed;
      if (InPos == In.size()) {
        In.clear();
        InPos = 0;
      }
      // The server answers in request order; an id mismatch means the
      // stream desynchronized and nothing further can be trusted.
      if (Resp.Id != PendingIds[PendingHead]) {
        kill();
        return false;
      }
      if (++PendingHead == PendingIds.size()) {
        PendingIds.clear();
        PendingHead = 0;
      }
      return true;
    }
    if (S == DecodeStatus::Malformed) {
      kill();
      return false;
    }
    uint8_t Chunk[16384];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      In.insert(In.end(), Chunk, Chunk + N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    kill(); // Peer closed or hard error mid-response.
    return false;
  }
}

NetResponse KvClient::roundTrip(NetRequest &Req) {
  NetResponse Resp;
  if (!send(Req) || !receive(Resp)) {
    Resp = NetResponse();
    Resp.Result = {KvStatus::IoError, 0};
  }
  return Resp;
}

KvResponse KvClient::get(uint64_t Key) {
  NetRequest Req;
  Req.Op = KvOp::Get;
  Req.Key = Key;
  return roundTrip(Req).Result;
}

KvResponse KvClient::put(uint64_t Key, uint64_t Value) {
  NetRequest Req;
  Req.Op = KvOp::Put;
  Req.Key = Key;
  Req.Value = Value;
  return roundTrip(Req).Result;
}

KvResponse KvClient::erase(uint64_t Key) {
  NetRequest Req;
  Req.Op = KvOp::Erase;
  Req.Key = Key;
  return roundTrip(Req).Result;
}

KvResponse KvClient::compareAndSwap(uint64_t Key, uint64_t Expected,
                                    uint64_t Desired) {
  NetRequest Req;
  Req.Op = KvOp::Cas;
  Req.Key = Key;
  Req.Expected = Expected;
  Req.Value = Desired;
  return roundTrip(Req).Result;
}

KvStatus
KvClient::multiPut(const std::vector<std::pair<uint64_t, uint64_t>> &Pairs) {
  NetRequest Req;
  Req.Op = KvOp::MultiPut;
  Req.Pairs = Pairs;
  return roundTrip(Req).Result.Status;
}

KvStatus KvClient::snapshotGet(const std::vector<uint64_t> &Keys,
                               std::vector<KvResponse> &Out) {
  NetRequest Req;
  Req.Op = KvOp::SnapshotGet;
  Req.Keys = Keys;
  NetResponse Resp = roundTrip(Req);
  Out = std::move(Resp.Values);
  if (Resp.Result.Status == KvStatus::Ok && Out.size() != Keys.size()) {
    kill(); // A well-formed server answers one slot per key.
    return KvStatus::IoError;
  }
  return Resp.Result.Status;
}

KvStatus KvClient::ping() {
  NetRequest Req;
  Req.Op = KvOp::Ping;
  return roundTrip(Req).Result.Status;
}
