//===-- net/KvServer.h - Epoll-based networked KV service -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The networked front end of the KV service: one epoll poll thread
/// owns all connection I/O and frame parsing (net/Protocol.h), and the
/// existing RequestExecutor pool executes the single-key operations it
/// feeds — the server adds a transport, not a second execution engine.
///
/// Request routing:
///
///  * Get/Put/Erase/Cas become KvRequests on the per-shard MPMC queues,
///    exactly like in-process submissions. The executor's
///    OnBatchComplete hook writes an eventfd, so the poll thread sleeps
///    in epoll_wait until results are ready instead of spinning on Done.
///  * MultiPut/SnapshotGet/Ping run synchronously on the poll thread
///    under ThreadId Workers (the store needs MaxThreads >= Workers+1).
///    Before one runs, the connection's in-flight single-key tail is
///    drained, so every operation on a connection observes all earlier
///    operations of that connection (per-connection program order).
///
/// Pipelining and ordering: clients may pipeline requests; responses are
/// sent strictly in request order per connection (an in-flight FIFO per
/// connection holds completed-out-of-order results back).
///
/// Admission control maps connection backpressure onto the executor's
/// bounded queues instead of buffering without limit: a connection with
/// MaxPipeline requests in flight — or whose next request targets a full
/// shard queue — has its EPOLLIN interest dropped until completions make
/// room, so a flooding client stalls in its own socket buffer while
/// other connections keep their latency. Submission order per connection
/// is preserved across stalls: a stalled request is always the parse
/// tail, and it is resubmitted before parsing resumes.
///
/// Durability composes transparently: attach a Wal to the KvStore before
/// start() and every acknowledged mutation is group-committed by the
/// executor/store paths the in-process surface already uses.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_NET_KVSERVER_H
#define PTM_NET_KVSERVER_H

#include "kv/Kv.h"
#include "net/Protocol.h"
#include "obs/Metrics.h"

#include <memory>
#include <thread>

namespace ptm {
namespace net {

class KvServer {
public:
  struct Options {
    uint16_t Port = 0;             ///< 0 = kernel-assigned; see port().
    unsigned Workers = 2;          ///< Executor pool; store MaxThreads
                                   ///< must be >= Workers + 1 (the poll
                                   ///< thread runs sync ops as its own
                                   ///< ThreadId).
    unsigned QueueCapacity = 1024; ///< Per-shard queue; power of two.
    unsigned MaxBatch = 16;        ///< Requests per shard transaction.
    unsigned MaxPipeline = 128;    ///< Per-connection in-flight cap.
  };

  /// True iff \p Opts can serve \p Store: executor-valid options with
  /// the extra poll-thread ThreadId available and a nonzero pipeline.
  static bool validOptions(const kv::KvStore &Store, const Options &Opts);

  /// Binds a loopback listener, spawns the executor pool and the poll
  /// thread. Null on socket errors or invalid options. The store (and
  /// any attached Wal) must outlive the server.
  static std::unique_ptr<KvServer> start(kv::KvStore &Store,
                                         const Options &Opts);

  /// Stops accepting, completes in-flight requests, joins everything.
  ~KvServer();

  KvServer(const KvServer &) = delete;
  KvServer &operator=(const KvServer &) = delete;

  /// The bound port (the kernel's choice when Options.Port was 0).
  uint16_t port() const { return Port_; }

  /// Idempotent shutdown; the destructor calls it.
  void stop();

  /// Live transport telemetry: `net.accepted` connections taken from the
  /// listener, `net.requests` frames parsed, `net.responses` frames
  /// written, `net.malformed` framing violations (each one also closed a
  /// connection). All cells are written only by the poll thread; any
  /// thread may snapshot. The execution-side view (batches, queue
  /// depths, latencies) stays on the executor's and Wal's telemetry().
  obs::MetricsSnapshot telemetry() const { return Registry.snapshot(); }

private:
  struct Connection;

  KvServer(kv::KvStore &Store, const Options &Opts);

  bool init();
  void pollLoop();
  void acceptAll();
  void onReadable(Connection &C);
  void parseInput(Connection &C);
  void dispatchAsync(Connection &C, const NetRequest &Req);
  void dispatchSync(Connection &C, const NetRequest &Req);
  void drainInFlight(Connection &C);
  void retrySubmit(Connection &C);
  void flushCompleted(Connection &C);
  void flushWrites(Connection &C);
  void pauseRead(Connection &C);
  void maybeResumeRead(Connection &C);
  void updateInterest(Connection &C);
  void closeConnection(int Fd);

  kv::KvStore &Store;
  Options Opts;
  std::unique_ptr<kv::RequestExecutor> Exec;
  uint16_t Port_ = 0;
  int ListenFd = -1;
  int EpollFd = -1;
  int CompleteFd = -1; ///< Executor batches kick this eventfd.
  int StopFd = -1;     ///< stop() kicks this eventfd.
  std::thread Poller;
  bool Stopped = false;

  /// Poll-thread-only counters (see telemetry()).
  obs::MetricsRegistry Registry;
  obs::ShardedCounter *Accepted = nullptr;
  obs::ShardedCounter *Requests = nullptr;
  obs::ShardedCounter *Responses = nullptr;
  obs::ShardedCounter *Malformed = nullptr;

  /// Owned connections, keyed by fd (only the poll thread touches them).
  struct ConnectionMap;
  std::unique_ptr<ConnectionMap> Conns;
};

} // namespace net
} // namespace ptm

#endif // PTM_NET_KVSERVER_H
