//===-- net/KvClient.h - Blocking + pipelined KV wire client ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: one blocking loopback socket
/// speaking net/Protocol.h frames. Two usage styles share the socket:
///
///  * Synchronous helpers (get/put/erase/compareAndSwap/multiPut/
///    snapshotGet/ping) — one request, wait for its response, return the
///    same KvResponse / KvStatus shapes the in-process KvStore surface
///    does. A correct program cannot tell a remote store from a local
///    one by its result vocabulary.
///  * Pipelined send() / receive() — enqueue many requests before
///    reading any response. The server answers in request order per
///    connection, so receive() returns responses in send() order; this
///    is what the latency benchmark and the load generator drive.
///
/// Not thread-safe: one KvClient per client thread (connections are
/// cheap; the server multiplexes them on one poll loop). Any socket
/// error collapses the connection — every subsequent call reports
/// KvStatus::IoError, mirroring how the WAL surfaces append failures.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_NET_KVCLIENT_H
#define PTM_NET_KVCLIENT_H

#include "kv/KvApi.h"
#include "net/Protocol.h"

#include <memory>
#include <vector>

namespace ptm {
namespace net {

class KvClient {
public:
  /// Connects to 127.0.0.1:\p Port. Null on connection failure.
  static std::unique_ptr<KvClient> connect(uint16_t Port);

  ~KvClient();

  KvClient(const KvClient &) = delete;
  KvClient &operator=(const KvClient &) = delete;

  /// False once any send/receive failed; the connection is then dead and
  /// every operation returns KvStatus::IoError.
  bool connected() const { return Fd >= 0; }

  //===--- synchronous surface (mirrors kv::KvStore) ---------------------===//

  kv::KvResponse get(uint64_t Key);
  kv::KvResponse put(uint64_t Key, uint64_t Value);
  kv::KvResponse erase(uint64_t Key);
  kv::KvResponse compareAndSwap(uint64_t Key, uint64_t Expected,
                                uint64_t Desired);
  kv::KvStatus
  multiPut(const std::vector<std::pair<uint64_t, uint64_t>> &Pairs);
  kv::KvStatus snapshotGet(const std::vector<uint64_t> &Keys,
                           std::vector<kv::KvResponse> &Out);
  kv::KvStatus ping();

  //===--- pipelined surface ----------------------------------------------===//

  /// Sends \p Req (the client stamps a fresh correlation id into it and
  /// returns that id). False on socket failure.
  bool send(NetRequest &Req);

  /// Blocks for the next response in send() order. False on socket
  /// failure or malformed/out-of-order response (both kill the
  /// connection — a desynchronized stream cannot be trusted).
  bool receive(NetResponse &Resp);

private:
  explicit KvClient(int SocketFd) : Fd(SocketFd) {}

  /// send + receive + id check; IoError response on any failure.
  NetResponse roundTrip(NetRequest &Req);

  void kill();

  int Fd = -1;
  uint64_t NextId = 1; ///< Stamped into requests; echoes must match FIFO.
  std::vector<uint64_t> PendingIds; ///< FIFO of ids awaiting responses.
  size_t PendingHead = 0;
  std::vector<uint8_t> In; ///< Buffered unparsed response bytes.
  size_t InPos = 0;
};

} // namespace net
} // namespace ptm

#endif // PTM_NET_KVCLIENT_H
