//===-- net/Protocol.h - Versioned binary KV wire protocol ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire codec for the networked KV service: length-prefixed binary
/// frames carrying the SAME KvOp / KvStatus / KvResponse vocabulary the
/// in-process surface uses (kv/KvApi.h), so a status produced deep in a
/// shard transaction travels to a remote client without translation.
///
/// Frame layout (all integers little-endian):
///
///   frame    := u32 body-length  body          (length excludes itself)
///   request  := u8 version  u8 op  u64 id  op-payload
///   response := u8 version  u8 status  u64 id  u64 value
///               u32 count  count * (u8 status  u64 value)
///
/// Op payloads: Get/Erase = u64 key; Put = u64 key  u64 value;
/// Cas = u64 key  u64 expected  u64 desired;
/// MultiPut = u32 count  count * (u64 key  u64 value);
/// SnapshotGet = u32 count  count * u64 key; Ping = empty.
///
/// Responses to single-key ops carry their KvResponse in (status, value)
/// with count = 0; SnapshotGet answers with the overall status plus one
/// (status, value) pair per requested key, in request order.
///
/// Decoding is incremental and defensive, mirroring the trace codec
/// (obs/Trace.cpp deserializeTraceBinary): a prefix of a frame decodes
/// to NeedMore (keep the bytes, read on), while a frame that can never
/// become valid — unknown version/op/status, length over kMaxFrameBytes,
/// counts that do not fit the declared length, trailing junk inside the
/// frame — decodes to Malformed and the connection should be dropped
/// (there is no way to resynchronize a corrupt length-prefixed stream).
///
/// Compatibility contract: the u8 op and status bytes are the enum raw
/// values from kv/KvApi.h, which are append-only; the version byte bumps
/// on any layout change. A decoder must reject versions it does not
/// speak rather than guess.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_NET_PROTOCOL_H
#define PTM_NET_PROTOCOL_H

#include "kv/KvApi.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ptm {
namespace net {

/// Wire protocol version; bumps on any frame-layout change.
inline constexpr uint8_t kProtocolVersion = 1;

/// Upper bound on one frame's body. Bounds per-connection buffering and
/// makes a corrupt length field fail fast instead of allocating 4 GiB.
/// Large enough for a 64Ki-key snapshotGet response.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// One decoded request. Key/Value/Expected serve the single-key ops,
/// Pairs serves MultiPut, Keys serves SnapshotGet; unused fields are
/// neither encoded nor decoded.
struct NetRequest {
  kv::KvOp Op = kv::KvOp::Ping;
  uint64_t Id = 0; ///< Client-chosen correlation id, echoed verbatim.
  uint64_t Key = 0;
  uint64_t Value = 0;    ///< put: value; cas: desired.
  uint64_t Expected = 0; ///< cas only.
  std::vector<std::pair<uint64_t, uint64_t>> Pairs; ///< MultiPut.
  std::vector<uint64_t> Keys;                       ///< SnapshotGet.
};

/// One decoded response: the overall result plus, for SnapshotGet, the
/// per-key responses in request order.
struct NetResponse {
  uint64_t Id = 0;
  kv::KvResponse Result;
  std::vector<kv::KvResponse> Values; ///< SnapshotGet only.
};

/// Decode outcome for one frame attempt.
enum class DecodeStatus : uint8_t {
  Ok,       ///< One frame consumed; the out-param is valid.
  NeedMore, ///< The bytes are a valid proper prefix; read more.
  Malformed ///< The stream can never parse; drop the connection.
};

/// Appends one encoded frame for \p Req to \p Out.
void encodeRequest(const NetRequest &Req, std::vector<uint8_t> &Out);

/// Appends one encoded frame for \p Resp to \p Out.
void encodeResponse(const NetResponse &Resp, std::vector<uint8_t> &Out);

/// Tries to decode one request frame from [Data, Data+Size). On Ok sets
/// \p Consumed to the frame's total byte length (prefix + body) and
/// fills \p Out; otherwise leaves \p Consumed untouched.
DecodeStatus decodeRequest(const uint8_t *Data, size_t Size,
                           size_t &Consumed, NetRequest &Out);

/// Response-side counterpart of decodeRequest.
DecodeStatus decodeResponse(const uint8_t *Data, size_t Size,
                            size_t &Consumed, NetResponse &Out);

} // namespace net
} // namespace ptm

#endif // PTM_NET_PROTOCOL_H
