//===-- net/Protocol.cpp - Versioned binary KV wire protocol --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include <cassert>

using namespace ptm;
using namespace ptm::net;
using kv::KvOp;
using kv::KvResponse;
using kv::KvStatus;

namespace {

template <typename T> void putLe(std::vector<uint8_t> &Out, T Value) {
  for (unsigned I = 0; I < sizeof(T); ++I)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

template <typename T>
bool getLe(const uint8_t *Data, size_t Size, size_t &Pos, T &Value) {
  if (Pos + sizeof(T) > Size)
    return false;
  Value = 0;
  for (unsigned I = 0; I < sizeof(T); ++I)
    Value |= static_cast<T>(Data[Pos + I]) << (8 * I);
  Pos += sizeof(T);
  return true;
}

/// Patches the placeholder length prefix at \p LenAt once the body is
/// fully appended; asserts the body fits the frame bound (the encoder's
/// callers build requests from bounded client input, so an oversized
/// frame is a programming error, not a runtime condition).
void patchLength(std::vector<uint8_t> &Out, size_t LenAt) {
  size_t BodyLen = Out.size() - LenAt - 4;
  assert(BodyLen <= kMaxFrameBytes && "frame exceeds kMaxFrameBytes");
  for (unsigned I = 0; I < 4; ++I)
    Out[LenAt + I] = static_cast<uint8_t>(BodyLen >> (8 * I));
}

/// Reads and validates the shared (length, version) prelude. Returns
/// NeedMore/Malformed verdicts; on Ok leaves \p Pos after the version
/// byte and \p End at the frame body's end.
DecodeStatus openFrame(const uint8_t *Data, size_t Size, size_t &Pos,
                       size_t &End) {
  uint32_t Len = 0;
  if (!getLe(Data, Size, Pos, Len))
    return DecodeStatus::NeedMore;
  if (Len > kMaxFrameBytes)
    return DecodeStatus::Malformed;
  if (Len > Size - Pos)
    return DecodeStatus::NeedMore;
  End = Pos + Len;
  uint8_t Version = 0;
  if (!getLe(Data, End, Pos, Version))
    return DecodeStatus::Malformed; // Body too short for the prelude.
  if (Version != kProtocolVersion)
    return DecodeStatus::Malformed;
  return DecodeStatus::Ok;
}

} // namespace

void ptm::net::encodeRequest(const NetRequest &Req,
                             std::vector<uint8_t> &Out) {
  size_t LenAt = Out.size();
  putLe<uint32_t>(Out, 0); // Patched below.
  putLe<uint8_t>(Out, kProtocolVersion);
  putLe<uint8_t>(Out, static_cast<uint8_t>(Req.Op));
  putLe<uint64_t>(Out, Req.Id);
  switch (Req.Op) {
  case KvOp::Get:
  case KvOp::Erase:
    putLe<uint64_t>(Out, Req.Key);
    break;
  case KvOp::Put:
    putLe<uint64_t>(Out, Req.Key);
    putLe<uint64_t>(Out, Req.Value);
    break;
  case KvOp::Cas:
    putLe<uint64_t>(Out, Req.Key);
    putLe<uint64_t>(Out, Req.Expected);
    putLe<uint64_t>(Out, Req.Value);
    break;
  case KvOp::MultiPut:
    putLe<uint32_t>(Out, static_cast<uint32_t>(Req.Pairs.size()));
    for (const auto &[Key, Value] : Req.Pairs) {
      putLe<uint64_t>(Out, Key);
      putLe<uint64_t>(Out, Value);
    }
    break;
  case KvOp::SnapshotGet:
    putLe<uint32_t>(Out, static_cast<uint32_t>(Req.Keys.size()));
    for (uint64_t Key : Req.Keys)
      putLe<uint64_t>(Out, Key);
    break;
  case KvOp::Ping:
    break;
  }
  patchLength(Out, LenAt);
}

void ptm::net::encodeResponse(const NetResponse &Resp,
                              std::vector<uint8_t> &Out) {
  size_t LenAt = Out.size();
  putLe<uint32_t>(Out, 0); // Patched below.
  putLe<uint8_t>(Out, kProtocolVersion);
  putLe<uint8_t>(Out, static_cast<uint8_t>(Resp.Result.Status));
  putLe<uint64_t>(Out, Resp.Id);
  putLe<uint64_t>(Out, Resp.Result.Value);
  putLe<uint32_t>(Out, static_cast<uint32_t>(Resp.Values.size()));
  for (const KvResponse &R : Resp.Values) {
    putLe<uint8_t>(Out, static_cast<uint8_t>(R.Status));
    putLe<uint64_t>(Out, R.Value);
  }
  patchLength(Out, LenAt);
}

DecodeStatus ptm::net::decodeRequest(const uint8_t *Data, size_t Size,
                                     size_t &Consumed, NetRequest &Out) {
  size_t Pos = 0, End = 0;
  DecodeStatus Prelude = openFrame(Data, Size, Pos, End);
  if (Prelude != DecodeStatus::Ok)
    return Prelude;
  uint8_t OpByte = 0;
  uint64_t Id = 0;
  if (!getLe(Data, End, Pos, OpByte) || !getLe(Data, End, Pos, Id))
    return DecodeStatus::Malformed;
  if (OpByte >= kv::kNumKvOps)
    return DecodeStatus::Malformed;
  Out = NetRequest();
  Out.Op = static_cast<KvOp>(OpByte);
  Out.Id = Id;
  switch (Out.Op) {
  case KvOp::Get:
  case KvOp::Erase:
    if (!getLe(Data, End, Pos, Out.Key))
      return DecodeStatus::Malformed;
    break;
  case KvOp::Put:
    if (!getLe(Data, End, Pos, Out.Key) ||
        !getLe(Data, End, Pos, Out.Value))
      return DecodeStatus::Malformed;
    break;
  case KvOp::Cas:
    if (!getLe(Data, End, Pos, Out.Key) ||
        !getLe(Data, End, Pos, Out.Expected) ||
        !getLe(Data, End, Pos, Out.Value))
      return DecodeStatus::Malformed;
    break;
  case KvOp::MultiPut: {
    uint32_t Count = 0;
    if (!getLe(Data, End, Pos, Count))
      return DecodeStatus::Malformed;
    if (Count > (End - Pos) / 16)
      return DecodeStatus::Malformed; // Count cannot fit the body.
    Out.Pairs.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      uint64_t Key = 0, Value = 0;
      if (!getLe(Data, End, Pos, Key) || !getLe(Data, End, Pos, Value))
        return DecodeStatus::Malformed;
      Out.Pairs.emplace_back(Key, Value);
    }
    break;
  }
  case KvOp::SnapshotGet: {
    uint32_t Count = 0;
    if (!getLe(Data, End, Pos, Count))
      return DecodeStatus::Malformed;
    if (Count > (End - Pos) / 8)
      return DecodeStatus::Malformed;
    Out.Keys.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      uint64_t Key = 0;
      if (!getLe(Data, End, Pos, Key))
        return DecodeStatus::Malformed;
      Out.Keys.push_back(Key);
    }
    break;
  }
  case KvOp::Ping:
    break;
  }
  if (Pos != End)
    return DecodeStatus::Malformed; // Trailing junk inside the frame.
  Consumed = End;
  return DecodeStatus::Ok;
}

DecodeStatus ptm::net::decodeResponse(const uint8_t *Data, size_t Size,
                                      size_t &Consumed, NetResponse &Out) {
  size_t Pos = 0, End = 0;
  DecodeStatus Prelude = openFrame(Data, Size, Pos, End);
  if (Prelude != DecodeStatus::Ok)
    return Prelude;
  uint8_t StatusByte = 0;
  uint64_t Id = 0, Value = 0;
  uint32_t Count = 0;
  if (!getLe(Data, End, Pos, StatusByte) || !getLe(Data, End, Pos, Id) ||
      !getLe(Data, End, Pos, Value) || !getLe(Data, End, Pos, Count))
    return DecodeStatus::Malformed;
  if (StatusByte >= kv::kNumKvStatuses)
    return DecodeStatus::Malformed;
  if (Count > (End - Pos) / 9)
    return DecodeStatus::Malformed;
  Out = NetResponse();
  Out.Id = Id;
  Out.Result = {static_cast<KvStatus>(StatusByte), Value};
  Out.Values.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint8_t S = 0;
    uint64_t V = 0;
    if (!getLe(Data, End, Pos, S) || !getLe(Data, End, Pos, V))
      return DecodeStatus::Malformed;
    if (S >= kv::kNumKvStatuses)
      return DecodeStatus::Malformed;
    Out.Values.push_back({static_cast<KvStatus>(S), V});
  }
  if (Pos != End)
    return DecodeStatus::Malformed;
  Consumed = End;
  return DecodeStatus::Ok;
}
