//===-- net/KvServer.cpp - Epoll-based networked KV service ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "net/KvServer.h"

#include <arpa/inet.h>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

using namespace ptm;
using namespace ptm::net;
using kv::KvOp;
using kv::KvRequest;
using kv::KvResponse;
using kv::KvStatus;

namespace {

/// Compacts \p Buf by dropping its consumed prefix once the dead space
/// dominates — amortized O(1) per byte, keeps the buffer from creeping.
void compact(std::vector<uint8_t> &Buf, size_t &Pos) {
  if (Pos == Buf.size()) {
    Buf.clear();
    Pos = 0;
  } else if (Pos >= 4096 && Pos >= Buf.size() / 2) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
}

} // namespace

/// One pipelined single-key operation in flight on a connection. The
/// KvRequest needs a stable address until the executor publishes Done,
/// so pending ops are heap-allocated and owned by the in-flight FIFO.
struct PendingOpImpl {
  uint64_t Id = 0;        ///< Echoed correlation id.
  bool Submitted = false; ///< False only for the stalled parse tail.
  KvRequest Req;
};

struct KvServer::Connection {
  int Fd = -1;

  /// Unparsed input; [InPos, In.size()) is live.
  std::vector<uint8_t> In;
  size_t InPos = 0;

  /// Encoded-but-unsent output; [OutPos, Out.size()) is live.
  std::vector<uint8_t> Out;
  size_t OutPos = 0;

  /// Submission-order FIFO of pipelined single-key ops. Responses are
  /// flushed strictly from the front, so out-of-order completions (two
  /// ops on different shards) are held back; at most the LAST entry can
  /// be unsubmitted (the stalled parse tail).
  std::deque<std::unique_ptr<PendingOpImpl>> InFlight;

  bool ReadPaused = false; ///< EPOLLIN interest dropped (admission).
  bool WantWrite = false;  ///< EPOLLOUT interest armed (short write).

  bool hasStalledTail() const {
    return !InFlight.empty() && !InFlight.back()->Submitted;
  }
};

struct KvServer::ConnectionMap {
  std::unordered_map<int, std::unique_ptr<Connection>> Map;
};

bool KvServer::validOptions(const kv::KvStore &Store, const Options &Opts) {
  kv::RequestExecutor::Options ExecOpts;
  ExecOpts.Workers = Opts.Workers;
  ExecOpts.QueueCapacity = Opts.QueueCapacity;
  ExecOpts.MaxBatch = Opts.MaxBatch;
  // The poll thread runs sync multi-key ops under its own ThreadId
  // (== Workers), so the store needs one slot beyond the pool's.
  return kv::RequestExecutor::validOptions(Store, ExecOpts) &&
         Store.maxThreads() >= Opts.Workers + 1 && Opts.MaxPipeline > 0;
}

KvServer::KvServer(kv::KvStore &S, const Options &O)
    : Store(S), Opts(O), Conns(std::make_unique<ConnectionMap>()) {}

std::unique_ptr<KvServer> KvServer::start(kv::KvStore &Store,
                                          const Options &Opts) {
  if (!validOptions(Store, Opts))
    return nullptr;
  std::unique_ptr<KvServer> Srv(new KvServer(Store, Opts));
  if (!Srv->init())
    return nullptr;
  Srv->Poller = std::thread([S = Srv.get()] { S->pollLoop(); });
  return Srv;
}

bool KvServer::init() {
  Accepted = &Registry.counter("net.accepted", 1);
  Requests = &Registry.counter("net.requests", 1);
  Responses = &Registry.counter("net.responses", 1);
  Malformed = &Registry.counter("net.malformed", 1);
  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (ListenFd < 0)
    return false;
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Opts.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return false;
  if (::listen(ListenFd, 128) != 0)
    return false;
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound),
                    &BoundLen) != 0)
    return false;
  Port_ = ntohs(Bound.sin_port);

  CompleteFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  StopFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (CompleteFd < 0 || StopFd < 0 || EpollFd < 0)
    return false;

  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = ListenFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) != 0)
    return false;
  Ev.data.fd = CompleteFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, CompleteFd, &Ev) != 0)
    return false;
  Ev.data.fd = StopFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, StopFd, &Ev) != 0)
    return false;

  kv::RequestExecutor::Options ExecOpts;
  ExecOpts.Workers = Opts.Workers;
  ExecOpts.QueueCapacity = Opts.QueueCapacity;
  ExecOpts.MaxBatch = Opts.MaxBatch;
  ExecOpts.OnBatchComplete = [Fd = CompleteFd] {
    uint64_t Kick = 1;
    // The eventfd is a wakeup edge, not a counter; a full (impossible at
    // this rate) or interrupted write just coalesces with the next one.
    [[maybe_unused]] ssize_t N = ::write(Fd, &Kick, sizeof(Kick));
  };
  Exec = std::make_unique<kv::RequestExecutor>(Store, ExecOpts);
  return true;
}

KvServer::~KvServer() { stop(); }

void KvServer::stop() {
  if (Stopped)
    return;
  Stopped = true;
  if (Poller.joinable()) {
    uint64_t One = 1;
    [[maybe_unused]] ssize_t N = ::write(StopFd, &One, sizeof(One));
    Poller.join();
  }
  if (Exec)
    Exec->drainAndStop();
  for (int Fd : {ListenFd, EpollFd, CompleteFd, StopFd})
    if (Fd >= 0)
      ::close(Fd);
  ListenFd = EpollFd = CompleteFd = StopFd = -1;
}

void KvServer::pollLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event Events[kMaxEvents];
  bool Running = true;
  while (Running) {
    int N = ::epoll_wait(EpollFd, Events, kMaxEvents, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N; ++I) {
      int Fd = Events[I].data.fd;
      if (Fd == StopFd) {
        Running = false;
        continue;
      }
      if (Fd == ListenFd) {
        acceptAll();
        continue;
      }
      if (Fd == CompleteFd) {
        uint64_t Drain = 0;
        [[maybe_unused]] ssize_t R = ::read(CompleteFd, &Drain, sizeof(Drain));
        // A batch completed somewhere: flush newly-done responses, retry
        // stalled submissions, and lift admission pauses. Connection
        // count is test/bench scale, so the sweep is cheap; a production
        // server would track which connections each batch touched.
        std::vector<int> Fds;
        Fds.reserve(Conns->Map.size());
        for (auto &[CFd, C] : Conns->Map)
          Fds.push_back(CFd);
        for (int CFd : Fds) {
          auto It = Conns->Map.find(CFd);
          if (It == Conns->Map.end())
            continue; // Closed by an earlier flush's write error.
          Connection &C = *It->second;
          flushCompleted(C);
          if (Conns->Map.find(CFd) == Conns->Map.end())
            continue;
          retrySubmit(C);
          if (Conns->Map.find(CFd) == Conns->Map.end())
            continue; // retrySubmit's parse resume closed C.
          maybeResumeRead(C);
        }
        continue;
      }
      auto It = Conns->Map.find(Fd);
      if (It == Conns->Map.end())
        continue; // Closed earlier in this event batch.
      Connection &C = *It->second;
      if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
        closeConnection(Fd);
        continue;
      }
      if (Events[I].events & EPOLLOUT) {
        flushWrites(C);
        if (Conns->Map.find(Fd) == Conns->Map.end())
          continue;
      }
      if (Events[I].events & EPOLLIN)
        onReadable(C);
    }
  }
  // Shutdown: wait out every submitted op (its KvRequest lives in the
  // connection), then tear the connections down.
  std::vector<int> Fds;
  Fds.reserve(Conns->Map.size());
  for (auto &[Fd, C] : Conns->Map)
    Fds.push_back(Fd);
  for (int Fd : Fds)
    closeConnection(Fd);
}

void KvServer::acceptAll() {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN or transient error; epoll will re-report.
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_unique<Connection>();
    C->Fd = Fd;
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
      ::close(Fd);
      continue;
    }
    Conns->Map.emplace(Fd, std::move(C));
    Accepted->cell(0).inc();
  }
}

void KvServer::onReadable(Connection &C) {
  int Fd = C.Fd;
  for (;;) {
    uint8_t Chunk[16384];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      C.In.insert(C.In.end(), Chunk, Chunk + N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    closeConnection(Fd); // Peer closed (0) or hard error.
    return;
  }
  parseInput(C);
}

void KvServer::parseInput(Connection &C) {
  int Fd = C.Fd;
  // A stalled tail means this connection already owes the executor a
  // submission; program order forbids parsing past it.
  while (!C.hasStalledTail()) {
    if (C.InFlight.size() >= Opts.MaxPipeline) {
      pauseRead(C);
      break;
    }
    NetRequest Req;
    size_t Consumed = 0;
    DecodeStatus S = decodeRequest(C.In.data() + C.InPos,
                                   C.In.size() - C.InPos, Consumed, Req);
    if (S == DecodeStatus::NeedMore)
      break;
    if (S == DecodeStatus::Malformed) {
      // No resynchronization in a length-prefixed stream: drop the
      // connection (the documented protocol contract).
      Malformed->cell(0).inc();
      closeConnection(Fd);
      return;
    }
    C.InPos += Consumed;
    Requests->cell(0).inc();
    switch (Req.Op) {
    case KvOp::Get:
    case KvOp::Put:
    case KvOp::Erase:
    case KvOp::Cas:
      dispatchAsync(C, Req);
      if (Conns->Map.find(Fd) == Conns->Map.end())
        return;
      break;
    default:
      dispatchSync(C, Req);
      if (Conns->Map.find(Fd) == Conns->Map.end())
        return;
      break;
    }
  }
  compact(C.In, C.InPos);
}

void KvServer::dispatchAsync(Connection &C, const NetRequest &Req) {
  auto Op = std::make_unique<PendingOpImpl>();
  Op->Id = Req.Id;
  Op->Req.Op = Req.Op;
  Op->Req.Key = Req.Key;
  Op->Req.Value = Req.Value;
  Op->Req.Expected = Req.Expected;
  Op->Submitted = Exec->trySubmit(Op->Req);
  bool Stalled = !Op->Submitted;
  C.InFlight.push_back(std::move(Op));
  if (Stalled) {
    // Shard queue full: the op becomes the stalled parse tail and this
    // connection's EPOLLIN goes quiet — backpressure propagates from the
    // bounded shard queue to the client's socket buffer.
    pauseRead(C);
  }
}

void KvServer::dispatchSync(Connection &C, const NetRequest &Req) {
  int Fd = C.Fd;
  // Multi-key ops run on the poll thread under its reserved ThreadId.
  // Draining first gives per-connection program order: this op observes
  // every earlier op of the same connection.
  drainInFlight(C);
  if (Conns->Map.find(Fd) == Conns->Map.end())
    return; // A response flush hit a write error and closed C.
  const ThreadId Tid = Opts.Workers;
  NetResponse Resp;
  Resp.Id = Req.Id;
  switch (Req.Op) {
  case KvOp::MultiPut:
    Resp.Result = {Store.multiPut(Tid, Req.Pairs), 0};
    break;
  case KvOp::SnapshotGet:
    Resp.Result = {Store.snapshotGet(Tid, Req.Keys, Resp.Values), 0};
    break;
  case KvOp::Ping:
    Resp.Result = {KvStatus::Ok, 0};
    break;
  default:
    Resp.Result = {KvStatus::BadRequest, 0};
    break;
  }
  encodeResponse(Resp, C.Out);
  Responses->cell(0).inc();
  flushWrites(C);
}

void KvServer::drainInFlight(Connection &C) {
  int Fd = C.Fd;
  while (!C.InFlight.empty()) {
    PendingOpImpl &Front = *C.InFlight.front();
    if (!Front.Submitted)
      Exec->submit(Front.Req); // Blocking: we are already waiting.
    Front.Submitted = true;
    kv::RequestExecutor::wait(Front.Req);
    flushCompleted(C);
    if (Conns->Map.find(Fd) == Conns->Map.end())
      return; // flushCompleted's write flush closed C.
  }
}

void KvServer::retrySubmit(Connection &C) {
  if (!C.hasStalledTail())
    return;
  PendingOpImpl &Tail = *C.InFlight.back();
  if (Exec->trySubmit(Tail.Req)) {
    Tail.Submitted = true;
    // The tail unblocked: buffered frames behind it may now parse.
    parseInput(C);
  }
}

void KvServer::flushCompleted(Connection &C) {
  bool Any = false;
  while (!C.InFlight.empty() && C.InFlight.front()->Submitted &&
         C.InFlight.front()->Req.done()) {
    PendingOpImpl &Op = *C.InFlight.front();
    NetResponse Resp;
    Resp.Id = Op.Id;
    Resp.Result = Op.Req.Out;
    encodeResponse(Resp, C.Out);
    Responses->cell(0).inc();
    C.InFlight.pop_front();
    Any = true;
  }
  if (Any)
    flushWrites(C);
}

void KvServer::flushWrites(Connection &C) {
  int Fd = C.Fd;
  while (C.OutPos < C.Out.size()) {
    ssize_t N = ::send(Fd, C.Out.data() + C.OutPos, C.Out.size() - C.OutPos,
                       MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!C.WantWrite) {
        C.WantWrite = true;
        updateInterest(C);
      }
      return;
    }
    if (N < 0 && errno == EINTR)
      continue;
    closeConnection(Fd);
    return;
  }
  C.Out.clear();
  C.OutPos = 0;
  if (C.WantWrite) {
    C.WantWrite = false;
    updateInterest(C);
  }
}

void KvServer::pauseRead(Connection &C) {
  if (C.ReadPaused)
    return;
  C.ReadPaused = true;
  updateInterest(C);
}

void KvServer::maybeResumeRead(Connection &C) {
  if (!C.ReadPaused || C.hasStalledTail() ||
      C.InFlight.size() >= Opts.MaxPipeline)
    return;
  C.ReadPaused = false;
  updateInterest(C);
  // Bytes buffered while paused may already hold complete frames that
  // epoll will never re-announce; parse them now.
  parseInput(C);
}

void KvServer::updateInterest(Connection &C) {
  epoll_event Ev{};
  Ev.events = (C.ReadPaused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (C.WantWrite ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  Ev.data.fd = C.Fd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void KvServer::closeConnection(int Fd) {
  auto It = Conns->Map.find(Fd);
  if (It == Conns->Map.end())
    return;
  std::unique_ptr<Connection> C = std::move(It->second);
  Conns->Map.erase(It);
  // Submitted ops reference KvRequest storage inside this connection;
  // wait them out before freeing it. The unsubmitted stalled tail (if
  // any) was never handed to the executor and can simply drop.
  for (auto &Op : C->InFlight)
    if (Op->Submitted)
      kv::RequestExecutor::wait(Op->Req);
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
}
