//===-- net/Net.h - Networked KV service umbrella header --------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the networked KV service: the versioned wire
/// protocol, the epoll server, and the client. Everything speaks the
/// kv/KvApi.h vocabulary — see DESIGN.md "Networked service".
///
//===----------------------------------------------------------------------===//

#ifndef PTM_NET_NET_H
#define PTM_NET_NET_H

#include "net/KvClient.h"  // IWYU pragma: export
#include "net/KvServer.h"  // IWYU pragma: export
#include "net/Protocol.h"  // IWYU pragma: export

#endif // PTM_NET_NET_H
