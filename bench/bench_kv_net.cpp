//===-- bench/bench_kv_net.cpp - Networked KV service benchmark -----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **kv_net — clients x shards x TmKind sweep over the loopback server.**
///
/// The full service stack on one machine: KvClient connections speak the
/// wire protocol to the epoll KvServer, whose RequestExecutor batches
/// single-key operations into per-shard transactions. Against the
/// in-process kv_throughput family this prices the transport: framing,
/// two socket hops, the poll loop, and the in-order response FIFO now
/// sit between the client and the TM, so the absolute numbers drop while
/// the *shapes* should survive — more shards still means fewer conflicts
/// per TM instance, and the TM kinds keep their relative order wherever
/// execution (not the wire) is the bottleneck.
///
/// Two scenarios per cell:
///
///  * `sync`      — one request in flight per connection: every op pays
///                  the full round trip, so p99/p999 expose the server's
///                  queueing + batching latency floor;
///  * `pipelined` — a 32-deep window per connection: throughput becomes
///                  the interesting number, and the latency tail shows
///                  what admission control does under standing load.
///
/// Metrics per cell: client-observed completed ops/s, and p99/p999 op
/// latency (send-to-response, measured against the in-order response
/// FIFO, recorded into a shared wait-free obs::LatencyHistogram).
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "kv/Kv.h"
#include "net/Net.h"
#include "obs/Metrics.h"
#include "stm/Tm.h"

#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void benchKvNet(bench::BenchContext &Ctx) {
  const uint64_t Ops = Ctx.pick<uint64_t>(2000, 200);
  const uint64_t KeySpace = Ctx.pick<uint64_t>(1024, 256);
  const std::vector<unsigned> ShardCounts =
      Ctx.pick<std::vector<unsigned>>({1, 2, 4, 8}, {1, 4});
  const std::vector<unsigned> ClientCounts =
      Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {2});
  constexpr unsigned kWorkers = 2;
  constexpr unsigned kWindow = 32; // Pipeline depth of the second scenario.

  struct Scenario {
    std::string Label;
    unsigned Window;
  };
  const std::vector<Scenario> Scenarios = {{"sync", 1},
                                           {"pipelined", kWindow}};

  auto RunCell = [&](const Scenario &Sc, TmKind Kind, unsigned Shards,
                     unsigned Clients) {
    std::vector<double> P99Samples, P999Samples;
    auto RunOnce = [&] {
      kv::KvConfig Cfg;
      Cfg.ShardCount = Shards;
      Cfg.BucketsPerShard = 64;
      Cfg.CapacityPerShard = KeySpace + Clients;
      Cfg.Kind = Kind;
      Cfg.MaxThreads = kWorkers + 1;
      auto Store = kv::KvStore::create(Cfg);
      net::KvServer::Options SrvOpts;
      SrvOpts.Workers = kWorkers;
      auto Server = net::KvServer::start(*Store, SrvOpts);

      obs::LatencyHistogram LatencyNs; // Shared; record() is wait-free.
      std::vector<std::thread> Threads;
      Threads.reserve(Clients);
      uint64_t StartNs = nowNs();
      for (unsigned T = 0; T < Clients; ++T) {
        Threads.emplace_back([&, T] {
          auto C = net::KvClient::connect(Server->port());
          if (!C)
            return;
          uint64_t Rng = 0x9E3779B97F4A7C15ull * (T + 1);
          auto Next = [&Rng] {
            Rng ^= Rng << 13;
            Rng ^= Rng >> 7;
            Rng ^= Rng << 17;
            return Rng;
          };
          // Window-driven pipeline: send until the window fills, then
          // pair each in-order response with its send timestamp.
          std::deque<uint64_t> SentAtNs;
          uint64_t Sent = 0, Done = 0;
          while (Done < Ops && C->connected()) {
            while (Sent < Ops && SentAtNs.size() < Sc.Window) {
              net::NetRequest Req;
              uint64_t Key = Next() % KeySpace;
              if (Next() % 2 == 0) {
                Req.Op = kv::KvOp::Put;
                Req.Key = Key;
                Req.Value = Sent;
              } else {
                Req.Op = kv::KvOp::Get;
                Req.Key = Key;
              }
              if (!C->send(Req))
                return;
              SentAtNs.push_back(nowNs());
              ++Sent;
            }
            net::NetResponse Resp;
            if (!C->receive(Resp))
              return;
            LatencyNs.record(nowNs() - SentAtNs.front());
            SentAtNs.pop_front();
            ++Done;
          }
        });
      }
      for (std::thread &T : Threads)
        T.join();
      double Seconds =
          static_cast<double>(nowNs() - StartNs) / 1e9;
      obs::HistogramSnapshot Snap = LatencyNs.snapshot();
      P99Samples.push_back(static_cast<double>(Snap.percentile(99.0)) /
                           1000.0);
      P999Samples.push_back(static_cast<double>(Snap.percentile(99.9)) /
                            1000.0);
      return Seconds > 0
                 ? static_cast<double>(Snap.Count) / Seconds
                 : 0.0;
    };
    bench::SampleStats Throughput = Ctx.measure(RunOnce);
    auto Tail = [&](const std::vector<double> &All) {
      std::vector<double> Measured(
          All.end() - static_cast<long>(Throughput.reps()), All.end());
      return bench::SampleStats::compute(std::move(Measured));
    };
    auto Report = [&](const std::string &Metric, const std::string &Unit,
                      const bench::SampleStats &Stats) {
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = Clients;
      Row.Params = {bench::param("shards", uint64_t{Shards}),
                    bench::param("scenario", Sc.Label),
                    bench::param("window", uint64_t{Sc.Window}),
                    bench::param("keyspace", KeySpace),
                    bench::param("ops_per_client", Ops)};
      Row.Metric = Metric;
      Row.Unit = Unit;
      Row.Stats = Stats;
      Ctx.report(Row);
    };
    Report("throughput", "op/s", Throughput);
    Report("p99_latency", "us", Tail(P99Samples));
    Report("p999_latency", "us", Tail(P999Samples));
  };

  for (const Scenario &Sc : Scenarios)
    for (TmKind Kind : allTmKinds())
      for (unsigned Shards : ShardCounts)
        for (unsigned Clients : ClientCounts)
          RunCell(Sc, Kind, Shards, Clients);
}

} // namespace

PTM_BENCHMARK("kv_net", "kv_net",
              "The networked service stack end to end: wire framing, the "
              "epoll poll loop, and executor batching between client and "
              "TM — pricing the transport against the in-process "
              "kv_throughput family",
              benchKvNet);
