//===-- bench/bench_history_check.cpp - Experiment E8 ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E8 — the Section 3 definitions as a live oracle.**
///
/// Records contended executions of every TM through RecordingTm and runs
/// the opacity checker on them, reporting history size, verdict and
/// checking time. Demonstrates (a) all five TMs produce opaque histories
/// under contention, (b) the exhaustive checker's practical envelope.
///
//===----------------------------------------------------------------------===//

#include "history/Checker.h"
#include "history/RecordingTm.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <chrono>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

History recordRun(TmKind Kind, unsigned Threads, unsigned TxnsPerThread,
                  uint64_t Seed) {
  RecordingTm M(createTm(Kind, 2, Threads));
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(Seed * 977 + T);
      for (unsigned I = 0; I < TxnsPerThread; ++I) {
        M.txBegin(T);
        uint64_t V;
        ObjectId A = static_cast<ObjectId>(Rng.nextBounded(2));
        if (!M.txRead(T, A, V))
          continue;
        if (Rng.nextBool(0.6) && !M.txWrite(T, A, V + 1))
          continue;
        uint64_t W;
        if (!M.txRead(T, 1 - A, W))
          continue;
        (void)M.txCommit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  return M.takeHistory();
}

const char *verdictName(CheckResult R) {
  switch (R) {
  case CheckResult::CR_Ok:
    return "opaque";
  case CheckResult::CR_Violation:
    return "VIOLATION";
  case CheckResult::CR_ResourceLimit:
    return "budget-hit";
  }
  return "?";
}

} // namespace

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E8  Opacity checking of recorded concurrent histories\n";
  OS << "==============================================================\n\n";

  TablePrinter Table(
      {"tm", "threads", "txns", "committed", "aborted", "verdict", "ms"});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned Threads : {2u, 3u}) {
      for (unsigned PerThread : {3u, 5u}) {
        History H = recordRun(Kind, Threads, PerThread, 7 + Threads);
        auto Start = std::chrono::steady_clock::now();
        CheckResult R = checkOpacity(H);
        auto End = std::chrono::steady_clock::now();
        double Ms = std::chrono::duration<double>(End - Start).count() * 1e3;
        Table.addRow({tmKindName(Kind), formatInt(uint64_t{Threads}),
                      formatInt(uint64_t{H.Txns.size()}),
                      formatInt(uint64_t{H.numCommitted()}),
                      formatInt(uint64_t{H.Txns.size() - H.numCommitted()}),
                      verdictName(R), formatDouble(Ms, 2)});
      }
    }
  }
  Table.print(OS);

  OS << "All verdicts must read 'opaque'. Checking time grows with the\n"
     << "number of concurrent (real-time-incomparable) transactions; the\n"
     << "search is exhaustive, so budget-hit would appear first on large\n"
     << "fully-concurrent histories.\n";
  OS.flush();
  return 0;
}
