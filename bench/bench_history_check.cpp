//===-- bench/bench_history_check.cpp - Experiment E8 ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E8 — the Section 3 definitions as a live oracle.**
///
/// Records contended executions of every TM through RecordingTm and runs
/// the opacity checker on them. Demonstrates (a) all TMs produce opaque
/// histories under contention (every row's `verdict` param must read
/// "opaque"), (b) the exhaustive checker's practical envelope (the
/// check_ms metric grows with the number of real-time-incomparable
/// transactions; "budget-hit" would appear first on large fully
/// concurrent histories).
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "history/Checker.h"
#include "history/RecordingTm.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <chrono>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

History recordRun(TmKind Kind, unsigned Threads, unsigned TxnsPerThread,
                  uint64_t Seed) {
  RecordingTm M(createTm(Kind, 2, Threads));
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(Seed * 977 + T);
      for (unsigned I = 0; I < TxnsPerThread; ++I) {
        M.txBegin(T);
        uint64_t V;
        ObjectId A = static_cast<ObjectId>(Rng.nextBounded(2));
        if (!M.txRead(T, A, V))
          continue;
        if (Rng.nextBool(0.6) && !M.txWrite(T, A, V + 1))
          continue;
        uint64_t W;
        if (!M.txRead(T, 1 - A, W))
          continue;
        (void)M.txCommit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  return M.takeHistory();
}

const char *verdictName(CheckResult R) {
  switch (R) {
  case CheckResult::CR_Ok:
    return "opaque";
  case CheckResult::CR_Violation:
    return "VIOLATION";
  case CheckResult::CR_ResourceLimit:
    return "budget-hit";
  }
  return "?";
}

void benchHistoryCheck(bench::BenchContext &Ctx) {
  const std::vector<unsigned> ThreadCounts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({2, 3}, {2}));
  const std::vector<unsigned> TxnCounts =
      Ctx.pick<std::vector<unsigned>>({3, 5}, {3});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned Threads : ThreadCounts) {
      for (unsigned PerThread : TxnCounts) {
        History H = recordRun(Kind, Threads, PerThread, 7 + Threads);
        // The history is recorded once; the *check* is the wall-clock
        // metric, so it goes through the warmup + repetition policy
        // (the verdict is deterministic for a fixed history).
        CheckResult R = CheckResult::CR_Ok;
        bench::SampleStats Stats = Ctx.measure([&] {
          auto Start = std::chrono::steady_clock::now();
          R = checkOpacity(H);
          auto End = std::chrono::steady_clock::now();
          return std::chrono::duration<double>(End - Start).count() * 1e3;
        });

        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = Threads;
        Row.Params = {
            bench::param("txns_per_thread", uint64_t{PerThread}),
            bench::param("history_txns", uint64_t{H.Txns.size()}),
            bench::param("committed", uint64_t{H.numCommitted()}),
            bench::param("verdict", verdictName(R))};
        Row.Metric = "check_ms";
        Row.Unit = "ms";
        // Anything but a confirmed-opaque verdict must not pass the
        // consumers' status == "ok" filter: a violation is a bug, a
        // budget-hit is an inconclusive check, not a data point.
        if (R == CheckResult::CR_Violation)
          Row.Status = "violation";
        else if (R == CheckResult::CR_ResourceLimit)
          Row.Status = "budget-hit";
        Row.Stats = Stats;
        Ctx.report(Row);
      }
    }
  }
}

} // namespace

PTM_BENCHMARK("history_check", "history",
              "Section 3 definitions as an oracle: recorded contended "
              "histories of every TM must verify as opaque; the exhaustive "
              "checker's cost envelope is the metric",
              benchHistoryCheck);
