//===-- bench/bench_kv_throughput.cpp - Sharded KV service throughput -----===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **kv_throughput — shards x threads x TmKind sweep of the KV service.**
///
/// The end-to-end face of the paper's per-TM costs: client threads issue
/// a mixed single-/multi-key workload against the sharded KvStore, and
/// the shard count decides how much of the store's traffic shares one TM
/// instance. Shapes to expect:
///
///  * more shards = fewer conflicts per TM: under the uniform scenario
///    throughput grows with the shard count for every progressive TM once
///    threads contend (the "cost of concurrency" is paid per shard);
///  * the hot_shard scenario funnels most key draws into shard 0's key
///    population, so added shards stop helping — the sharding win
///    evaporates exactly when the partitioning assumption does;
///  * glock serializes each shard, so sharding is its *only* source of
///    parallelism — the starkest scaling row;
///  * tml keeps aborting readers on any co-located commit, so the hot
///    shard punishes it hardest.
///
/// Metrics per cell: committed shard transactions per second (single-key
/// ops are one transaction; multi-key ops contribute one per involved
/// shard), client-observed p99/p999 op latency (1-in-8 sampled into
/// obs::LatencyHistograms — see KvMixMetrics), and the live abort ratio
/// of the shard TMs.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "kv/Kv.h"
#include "stm/Tm.h"
#include "workload/KvWorkload.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace ptm;

namespace {

void benchKvThroughput(bench::BenchContext &Ctx) {
  const uint64_t Ops = Ctx.pick<uint64_t>(1500, 150);
  const uint64_t KeySpace = Ctx.pick<uint64_t>(2048, 256);
  const std::vector<unsigned> ShardCounts =
      Ctx.pick<std::vector<unsigned>>({1, 2, 4, 8}, {1, 4});
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {1, 4}));

  struct Scenario {
    std::string Label;
    double HotShardFrac;
  };
  const std::vector<Scenario> Scenarios = {{"uniform", 0.0},
                                           {"hot_shard", 0.75}};

  // One measured cell: runs the mix and reports all four metrics, with
  // the TM's clock and contention-manager configuration as row params so
  // the (clock, cm) dimension is present on every row of the family.
  auto RunCell = [&](const Scenario &Sc, TmKind Kind, unsigned Shards,
                     unsigned N, const TmConfig &TmCfg) {
    // One run feeds four metrics (throughput + the telemetry
    // columns), so collect companions per rep and slice them to
    // the measured repetitions afterwards (warmups at the front).
    std::vector<double> ThroughputSamples, P99Samples, P999Samples,
        AbortSamples;
    auto RunOnce = [&] {
      kv::KvConfig Cfg;
      Cfg.ShardCount = Shards;
      Cfg.BucketsPerShard = 64;
      // Room for the whole key space landing in one shard (the
      // hot-shard scenario concentrates inserts).
      Cfg.CapacityPerShard = KeySpace + N;
      Cfg.Kind = Kind;
      Cfg.MaxThreads = N;
      Cfg.Tm = TmCfg;
      auto Store = kv::KvStore::create(Cfg);
      KvMixConfig Mix;
      Mix.OpsPerThread = Ops;
      Mix.KeySpace = KeySpace;
      Mix.HotShardFrac = Sc.HotShardFrac;
      Mix.Seed = 42;
      KvMixMetrics Metrics;
      RunResult R = runKvMix(*Store, N, Mix, &Metrics);
      uint64_t Tried = R.Commits + R.Aborts;
      ThroughputSamples.push_back(R.throughputPerSec());
      P99Samples.push_back(Metrics.P99Us);
      P999Samples.push_back(Metrics.P999Us);
      AbortSamples.push_back(
          Tried == 0 ? 0.0
                     : 100.0 * static_cast<double>(R.Aborts) /
                           static_cast<double>(Tried));
      return ThroughputSamples.back();
    };
    bench::SampleStats Throughput = Ctx.measure(RunOnce);
    auto Tail = [&](const std::vector<double> &All) {
      std::vector<double> Measured(
          All.end() - static_cast<long>(Throughput.reps()), All.end());
      return bench::SampleStats::compute(std::move(Measured));
    };

    auto Report = [&](const std::string &Metric, const std::string &Unit,
                      const bench::SampleStats &Stats) {
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = N;
      Row.Params = {bench::param("shards", uint64_t{Shards}),
                    bench::param("scenario", Sc.Label),
                    bench::param("keyspace", KeySpace),
                    bench::param("ops_per_thread", Ops),
                    bench::param("clock", clockKindName(TmCfg.Clock)),
                    bench::param("cm", cmKindName(TmCfg.Cm))};
      Row.Metric = Metric;
      Row.Unit = Unit;
      Row.Stats = Stats;
      Ctx.report(Row);
    };
    Report("throughput", "txn/s", Throughput);
    Report("p99_latency", "us", Tail(P99Samples));
    Report("p999_latency", "us", Tail(P999Samples));
    Report("abort_ratio", "%", Tail(AbortSamples));
  };

  for (const Scenario &Sc : Scenarios)
    for (TmKind Kind : allTmKinds())
      for (unsigned Shards : ShardCounts)
        for (unsigned N : Counts)
          RunCell(Sc, Kind, Shards, N, TmConfig());

  // The (clock, cm) sweep: every non-default clock under the default CM
  // and every non-default CM under the default clock, on the hot-shard
  // scenario at the widest thread count — the contended cell where the
  // commit-stamp protocol and the between-attempt wait policy actually
  // shape throughput. TL2 is the subject (the canonical clock-based TM);
  // mv rides the same sweep to cover the shared-snapshot-clock path.
  const Scenario &Hot = Scenarios.back();
  const unsigned MaxN = *std::max_element(Counts.begin(), Counts.end());
  const unsigned SweepShards = ShardCounts.front();
  std::vector<TmConfig> Combos;
  for (ClockKind Clock : allClockKinds())
    if (Clock != ClockKind::CK_Gv1)
      Combos.push_back({Clock, CmKind::CM_Backoff});
  for (CmKind Cm : allCmKinds())
    if (Cm != CmKind::CM_Backoff)
      Combos.push_back({ClockKind::CK_Gv1, Cm});
  for (const TmConfig &TmCfg : Combos) {
    RunCell(Hot, TmKind::TK_Tl2, SweepShards, MaxN, TmCfg);
    RunCell(Hot, TmKind::TK_Mv, SweepShards, MaxN, TmCfg);
  }
}

} // namespace

PTM_BENCHMARK("kv_throughput", "kv_throughput",
              "Service-scale sharding: per-shard TM instances turn the "
              "paper's single-instance concurrency costs into per-shard "
              "latencies — throughput grows with the shard count until the "
              "hot-shard scenario breaks the partitioning assumption",
              benchKvThroughput);
