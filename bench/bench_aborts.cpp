//===-- bench/bench_aborts.cpp - Experiment E5 ----------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E5 — progressiveness and strong progressiveness in numbers.**
///
/// Three workloads per TM:
///  * disjoint partitions — progressiveness predicts **zero** aborts;
///  * single-item hotspot — abort rates by cause; strong progressiveness
///    predicts every round of conflicting single-shot transactions commits
///    at least one member (reported as "empty rounds", expected 0);
///  * zipf-skewed mix — a realistic middle ground.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "support/Table.h"
#include "workload/Workload.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

constexpr unsigned kThreads = 4;

/// Counts rounds of simultaneous single-shot hotspot transactions in which
/// nobody committed (strong progressiveness says: none).
uint64_t emptyRounds(Tm &M, unsigned Rounds) {
  std::atomic<unsigned> Arrived{0};
  std::atomic<unsigned> Generation{0};
  std::atomic<unsigned> CommitsThisRound{0};
  std::atomic<uint64_t> Empty{0};

  auto Barrier = [&] {
    unsigned Gen = Generation.load();
    if (Arrived.fetch_add(1) + 1 == kThreads) {
      Arrived.store(0);
      Generation.fetch_add(1);
      return;
    }
    while (Generation.load() == Gen)
      std::this_thread::yield();
  };

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < kThreads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        Barrier();
        if (T == 0)
          CommitsThisRound.store(0);
        Barrier();
        bool Ok = atomically(
            M, T,
            [](TxRef &Tx) {
              uint64_t V = Tx.readOr(0, 0);
              Tx.write(0, V + 1);
            },
            /*MaxAttempts=*/1);
        if (Ok)
          CommitsThisRound.fetch_add(1);
        Barrier();
        if (T == 0 && CommitsThisRound.load() == 0)
          Empty.fetch_add(1);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  return Empty.load();
}

std::string causeBreakdown(const TmStats &S) {
  std::string Out;
  Out += "rv=" + formatInt(S.Aborts[1]);
  Out += " lk=" + formatInt(S.Aborts[2]);
  Out += " cv=" + formatInt(S.Aborts[3]);
  return Out;
}

} // namespace

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E5  Progressiveness (Def. progressive / strongly progressive)\n";
  OS << "    " << kThreads << " threads; abort causes: rv=read-validation,"
     << " lk=lock-held, cv=commit-validation\n";
  OS << "==============================================================\n\n";

  TablePrinter Disjoint(
      {"tm", "commits", "aborts", "throughput/s", "verdict"});
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 64, kThreads);
    RunResult R = runDisjoint(*M, kThreads, 3000, 16, 4, /*Seed=*/3);
    const char *Verdict = R.Aborts == 0 ? "progressive" : "VIOLATION";
    if (!isProgressive(Kind))
      Verdict = "not progressive (by design)";
    Disjoint.addRow({tmKindName(Kind), formatInt(R.Commits),
                     formatInt(R.Aborts),
                     formatDouble(R.throughputPerSec(), 0), Verdict});
  }
  OS << "Disjoint partitions (conflict-free => zero aborts required):\n";
  Disjoint.print(OS);

  TablePrinter Hotspot({"tm", "commits", "aborts", "abort%", "causes",
                        "empty-rounds"});
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 1, kThreads);
    RunResult R = runHotspot(*M, kThreads, 5000);
    TmStats S = M->stats();
    auto M2 = createTm(Kind, 1, kThreads);
    uint64_t Empty = emptyRounds(*M2, 200);
    Hotspot.addRow({tmKindName(Kind), formatInt(R.Commits),
                    formatInt(R.Aborts),
                    formatDouble(100.0 * S.abortRatio(), 1),
                    causeBreakdown(S), formatInt(Empty)});
  }
  OS << "Single-item hotspot (strong progressiveness => empty-rounds = 0):\n";
  Hotspot.print(OS);

  TablePrinter Zipf({"tm", "commits", "aborts", "abort%", "throughput/s"});
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 256, kThreads);
    RunResult R = runZipfMix(*M, kThreads, 4000, 4, /*ReadProb=*/0.5,
                             /*Theta=*/0.8, /*Seed=*/17);
    TmStats S = M->stats();
    Zipf.addRow({tmKindName(Kind), formatInt(R.Commits), formatInt(R.Aborts),
                 formatDouble(100.0 * S.abortRatio(), 1),
                 formatDouble(R.throughputPerSec(), 0)});
  }
  OS << "Zipf(0.8) mixed read/write, 4 ops/txn:\n";
  Zipf.print(OS);

  OS.flush();
  return 0;
}
