//===-- bench/bench_aborts.cpp - Experiment E5 ----------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E5 — progressiveness and strong progressiveness in numbers.**
///
/// Three workloads per TM:
///  * disjoint partitions — progressiveness predicts **zero** aborts
///    (the `aborts` metric must be 0 for every TM whose `progressive`
///    param says "yes"; TML is the designed-in exception);
///  * single-item hotspot — abort rate and causes; strong progressiveness
///    predicts every round of conflicting single-shot transactions
///    commits at least one member (`empty_rounds`, expected 0);
///  * zipf-skewed mix — a realistic middle ground.
///
/// Abort causes in the `causes` param: rv=read-validation, lk=lock-held,
/// cv=commit-validation.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "workload/Workload.h"

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

using namespace ptm;

namespace {

/// Counts rounds of simultaneous single-shot hotspot transactions in which
/// nobody committed (strong progressiveness says: none).
uint64_t emptyRounds(Tm &M, unsigned Threads, unsigned Rounds) {
  std::atomic<unsigned> Arrived{0};
  std::atomic<unsigned> Generation{0};
  std::atomic<unsigned> CommitsThisRound{0};
  std::atomic<uint64_t> Empty{0};

  auto Barrier = [&] {
    unsigned Gen = Generation.load();
    if (Arrived.fetch_add(1) + 1 == Threads) {
      Arrived.store(0);
      Generation.fetch_add(1);
      return;
    }
    while (Generation.load() == Gen)
      std::this_thread::yield();
  };

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        Barrier();
        if (T == 0)
          CommitsThisRound.store(0);
        Barrier();
        bool Ok = atomically(
            M, T,
            [](TxRef &Tx) {
              uint64_t V = Tx.readOr(0, 0);
              Tx.write(0, V + 1);
            },
            /*MaxAttempts=*/1);
        if (Ok)
          CommitsThisRound.fetch_add(1);
        Barrier();
        if (T == 0 && CommitsThisRound.load() == 0)
          Empty.fetch_add(1);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  return Empty.load();
}

std::string causeBreakdown(const TmStats &S) {
  std::string Out;
  Out += "rv=" + formatInt(S.Aborts[1]);
  Out += " lk=" + formatInt(S.Aborts[2]);
  Out += " cv=" + formatInt(S.Aborts[3]);
  return Out;
}

/// Per-metric samples of one workload repeated under the warmup +
/// repetition policy. Commit/abort totals vary run to run under real
/// contention, so they get full statistics just like the wall-clock
/// throughput; Causes keeps the last repetition's breakdown (informational).
struct WorkloadSamples {
  std::vector<double> Commits, Aborts, Throughput, AbortPct;
  std::string Causes;
};

template <typename RunOnce>
WorkloadSamples collect(bench::BenchContext &Ctx, RunOnce &&Once) {
  for (unsigned I = 0; I < Ctx.warmup(); ++I)
    (void)Once();
  WorkloadSamples S;
  for (unsigned I = 0; I < Ctx.reps(); ++I) {
    std::pair<RunResult, TmStats> R = Once();
    S.Commits.push_back(static_cast<double>(R.first.Commits));
    S.Aborts.push_back(static_cast<double>(R.first.Aborts));
    S.Throughput.push_back(R.first.throughputPerSec());
    S.AbortPct.push_back(100.0 * R.second.abortRatio());
    S.Causes = causeBreakdown(R.second);
  }
  return S;
}

void reportCounts(bench::BenchContext &Ctx, bench::ResultRow Row,
                  WorkloadSamples &S) {
  Row.Metric = "commits";
  Row.Unit = "txn";
  Row.Stats = bench::SampleStats::compute(std::move(S.Commits));
  Ctx.report(Row);

  Row.Metric = "aborts";
  Row.Unit = "txn";
  Row.Stats = bench::SampleStats::compute(std::move(S.Aborts));
  Ctx.report(Row);

  Row.Metric = "throughput";
  Row.Unit = "txn/s";
  Row.Stats = bench::SampleStats::compute(std::move(S.Throughput));
  Ctx.report(Row);
}

void benchAborts(bench::BenchContext &Ctx) {
  const uint64_t DisjointTxns = Ctx.pick<uint64_t>(3000, 400);
  const uint64_t HotspotTxns = Ctx.pick<uint64_t>(5000, 600);
  const unsigned Rounds = Ctx.pick<unsigned>(200, 40);
  const uint64_t ZipfTxns = Ctx.pick<uint64_t>(4000, 500);

  const std::vector<unsigned> Counts = Ctx.threadCounts({4});

  for (unsigned N : Counts) {
    for (TmKind Kind : allTmKinds()) {
      const char *Progressive = isProgressive(Kind) ? "yes" : "no";

      // Disjoint partitions: conflict-free => zero aborts required of any
      // progressive TM.
      {
        WorkloadSamples S = collect(Ctx, [&] {
          auto M = createTm(Kind, N * 16, N);
          RunResult R = runDisjoint(*M, N, DisjointTxns, 16, 4, /*Seed=*/3);
          return std::make_pair(R, M->stats());
        });
        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = N;
        Row.Params = {bench::param("workload", "disjoint"),
                      bench::param("progressive", Progressive)};
        reportCounts(Ctx, Row, S);
      }

      // Single-item hotspot: abort ratio, cause breakdown and the strong-
      // progressiveness empty-rounds check.
      {
        WorkloadSamples S = collect(Ctx, [&] {
          auto M = createTm(Kind, 1, N);
          RunResult R = runHotspot(*M, N, HotspotTxns);
          return std::make_pair(R, M->stats());
        });
        std::vector<double> Empty;
        for (unsigned I = 0; I < Ctx.reps(); ++I) {
          auto M = createTm(Kind, 1, N);
          Empty.push_back(static_cast<double>(emptyRounds(*M, N, Rounds)));
        }

        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = N;
        Row.Params = {bench::param("workload", "hotspot"),
                      bench::param("progressive", Progressive),
                      bench::param("causes", S.Causes)};
        reportCounts(Ctx, Row, S);

        Row.Metric = "abort_pct";
        Row.Unit = "%";
        Row.Stats = bench::SampleStats::compute(std::move(S.AbortPct));
        Ctx.report(Row);

        Row.Metric = "empty_rounds";
        Row.Unit = "rounds";
        Row.Params = {bench::param("workload", "hotspot"),
                      bench::param("progressive", Progressive),
                      bench::param("rounds", uint64_t{Rounds})};
        Row.Stats = bench::SampleStats::compute(std::move(Empty));
        Ctx.report(Row);
      }

      // Zipf-skewed mix: the realistic middle ground.
      {
        WorkloadSamples S = collect(Ctx, [&] {
          auto M = createTm(Kind, 256, N);
          RunResult R = runZipfMix(*M, N, ZipfTxns, 4, /*ReadProb=*/0.5,
                                   /*Theta=*/0.8, /*Seed=*/17);
          return std::make_pair(R, M->stats());
        });
        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = N;
        Row.Params = {bench::param("workload", "zipf_0.8"),
                      bench::param("progressive", Progressive)};
        reportCounts(Ctx, Row, S);

        Row.Metric = "abort_pct";
        Row.Unit = "%";
        Row.Stats = bench::SampleStats::compute(std::move(S.AbortPct));
        Ctx.report(Row);
      }
    }
  }
}

} // namespace

PTM_BENCHMARK("aborts", "aborts",
              "Progressiveness (Def. 1): zero aborts on disjoint data; "
              "strong progressiveness: no round of conflicting single-item "
              "transactions ends with everyone aborted (empty_rounds = 0)",
              benchAborts);
