//===-- bench/bench_ds_mix.cpp - Structure-workload throughput ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **ds_mix — wall-clock throughput of the transactional structures.**
///
/// The compositionality pitch in systems terms: the src/ds/ structures,
/// written sequential-style inside transactions, driven by the
/// DsWorkload.h mixes across every TM and a thread sweep. Shapes to
/// expect:
///
///  * set_mix (Zipf keys, 20/20/60 insert/remove/contains): traversal
///    read sets grow with the key range, so the Theorem 3 TMs
///    (orec-incr/orec-eager) pay quadratic validation per op while
///    tl2/norec stay flat — the wall-clock face of bench_ds_set.
///  * map_read / map_write: hashing keeps chains (and read sets) short;
///    the gap between the TM classes collapses, isolating allocator and
///    commit costs.
///  * queue: a 3-object transaction ping-ponged between producers and
///    consumers — pure contention, nothing scales, glock respectable.
///  * counter: striped increments are disjoint, so every progressive TM
///    scales; the occasional all-stripe read pays the m-read cost.
///
/// Metric: committed transactions per second (includes the retried
/// full/empty polls of the queue; see DsWorkload.h).
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "ds/Ds.h"
#include "stm/Tm.h"
#include "workload/DsWorkload.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

using namespace ptm;

namespace {

void benchDsMix(bench::BenchContext &Ctx) {
  const uint64_t Ops = Ctx.pick<uint64_t>(2000, 200);
  const uint64_t KeySpace = Ctx.pick<uint64_t>(256, 32);
  const unsigned Buckets = Ctx.pick<unsigned>(64, 8);
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {1, 2}));

  struct Shape {
    std::string Label;
    std::function<RunResult(TmKind, unsigned, const TmConfig &)> Run;
  };
  const std::vector<Shape> Shapes = {
      {"set_mix",
       [&](TmKind Kind, unsigned Threads, const TmConfig &TmCfg) {
         uint64_t Capacity = KeySpace + Threads;
         auto M = createTm(Kind, ds::TxSet::objectsNeeded(Capacity), Threads,
                           TmCfg);
         ds::TxSet Set(*M, 0, Capacity);
         return runDsSetMix(Set, Threads, Ops, /*InsertProb=*/0.2,
                            /*RemoveProb=*/0.2, KeySpace, /*Theta=*/0.8, 42);
       }},
      {"map_read",
       [&](TmKind Kind, unsigned Threads, const TmConfig &TmCfg) {
         uint64_t Capacity = KeySpace + Threads;
         auto M = createTm(Kind, ds::TxMap::objectsNeeded(Buckets, Capacity),
                           Threads, TmCfg);
         ds::TxMap Map(*M, 0, Buckets, Capacity);
         return runDsMapMix(Map, Threads, Ops, /*GetProb=*/0.9, KeySpace,
                            /*Theta=*/0.8, 42);
       }},
      {"map_write",
       [&](TmKind Kind, unsigned Threads, const TmConfig &TmCfg) {
         uint64_t Capacity = KeySpace + Threads;
         auto M = createTm(Kind, ds::TxMap::objectsNeeded(Buckets, Capacity),
                           Threads, TmCfg);
         ds::TxMap Map(*M, 0, Buckets, Capacity);
         return runDsMapMix(Map, Threads, Ops, /*GetProb=*/0.5, KeySpace,
                            /*Theta=*/0.9, 42);
       }},
      {"counter",
       [&](TmKind Kind, unsigned Threads, const TmConfig &TmCfg) {
         auto M = createTm(Kind, ds::TxCounter::objectsNeeded(Threads),
                           Threads, TmCfg);
         ds::TxCounter Counter(*M, 0, Threads);
         return runDsCounterLoad(Counter, Threads, Ops, /*ReadProb=*/0.1, 42);
       }},
  };

  // One measured row; the TM's clock and contention-manager configuration
  // ride along as params so the (clock, cm) dimension is on every row.
  auto RunCell = [&](const Shape &S, TmKind Kind, unsigned N,
                     const TmConfig &TmCfg) {
    bench::ResultRow Row;
    Row.Tm = tmKindName(Kind);
    Row.Threads = N;
    Row.Params = {bench::param("workload", S.Label),
                  bench::param("ops_per_thread", Ops),
                  bench::param("clock", clockKindName(TmCfg.Clock)),
                  bench::param("cm", cmKindName(TmCfg.Cm))};
    Row.Metric = "throughput";
    Row.Unit = "txn/s";
    Row.Stats =
        Ctx.measure([&] { return S.Run(Kind, N, TmCfg).throughputPerSec(); });
    Ctx.report(Row);
  };

  for (const Shape &S : Shapes)
    for (TmKind Kind : allTmKinds())
      for (unsigned N : Counts)
        RunCell(S, Kind, N, TmConfig());

  // The (clock, cm) sweep on the contended Zipf set at the widest thread
  // count: non-default clocks under the default CM and non-default CMs
  // under the default clock, on the two clock-based TMs — tl2 (fixed
  // snapshot, aborts on clock staleness) and orec-ts (extends instead),
  // whose different abort rates give the wait policy different leverage.
  const unsigned MaxN = *std::max_element(Counts.begin(), Counts.end());
  std::vector<TmConfig> Combos;
  for (ClockKind Clock : allClockKinds())
    if (Clock != ClockKind::CK_Gv1)
      Combos.push_back({Clock, CmKind::CM_Backoff});
  for (CmKind Cm : allCmKinds())
    if (Cm != CmKind::CM_Backoff)
      Combos.push_back({ClockKind::CK_Gv1, Cm});
  for (const TmConfig &TmCfg : Combos) {
    RunCell(Shapes.front(), TmKind::TK_Tl2, MaxN, TmCfg);
    RunCell(Shapes.front(), TmKind::TK_OrecTs, MaxN, TmCfg);
  }

  // The queue pipeline needs both ends, so the sweep count is split into
  // producers + consumers; sweep entries that normalize to the same
  // split (1 and 2 both become 1+1) run once, and rows are labeled with
  // the real thread count.
  std::vector<std::pair<unsigned, unsigned>> Splits;
  for (unsigned N : Counts) {
    unsigned Producers = N > 1 ? N / 2 : 1;
    std::pair<unsigned, unsigned> Split{Producers,
                                        N > 1 ? N - Producers : 1};
    if (std::find(Splits.begin(), Splits.end(), Split) == Splits.end())
      Splits.push_back(Split);
  }
  for (TmKind Kind : allTmKinds()) {
    for (auto [Producers, Consumers] : Splits) {
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = Producers + Consumers;
      Row.Params = {bench::param("workload", "queue"),
                    bench::param("ops_per_thread", Ops),
                    bench::param("producers", uint64_t{Producers}),
                    bench::param("consumers", uint64_t{Consumers}),
                    bench::param("clock", clockKindName(ClockKind::CK_Gv1)),
                    bench::param("cm", cmKindName(CmKind::CM_Backoff))};
      Row.Metric = "throughput";
      Row.Unit = "txn/s";
      Row.Stats = Ctx.measure([&, P = Producers, C = Consumers] {
        auto M = createTm(Kind, ds::TxQueue::objectsNeeded(8), P + C);
        ds::TxQueue Queue(*M, 0, 8);
        return runDsQueuePipeline(Queue, P, C, Ops).throughputPerSec();
      });
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("ds_mix", "ds_mix",
              "Compositionality in wall-clock terms: sequential-style "
              "transactional structures (set/map/queue/counter) under "
              "contended mixes — structure shape sets the read-set size m, "
              "and with it each TM's Theorem 3 validation bill",
              benchDsMix);
