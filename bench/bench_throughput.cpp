//===-- bench/bench_throughput.cpp - Experiment E7 ------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E7 — systems-style STM throughput comparison.**
///
/// Transactions/second for each TM across the four canonical workload
/// shapes (hotspot, disjoint, read-dominated Zipf, write-heavy Zipf) at
/// 1..4 threads. This is the experiment every TM paper the reproduction
/// cites runs (TL2 [7], NOrec [6], TLRW [9]); the expected *shape*:
///
///  * disjoint: everything scales; glock is the floor (serializes).
///  * hotspot: nothing scales (single item); glock often wins — no wasted
///    speculation; strong progressiveness keeps everyone live.
///  * read-dominated: tl2/norec win (O(1)-validated invisible reads);
///    orec-incr pays quadratic validation; tlrw pays a CAS per read.
///  * write-heavy skewed: locking/validation costs mix; norec's single
///    commit point throttles scaling.
///
//===----------------------------------------------------------------------===//

#include "stm/Tm.h"
#include "workload/Workload.h"

#include <benchmark/benchmark.h>

using namespace ptm;

namespace {

constexpr uint64_t kTxnsPerThread = 3000;

void benchHotspot(benchmark::State &State, TmKind Kind) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto M = createTm(Kind, 1, Threads);
    RunResult R = runHotspot(*M, Threads, kTxnsPerThread);
    benchmark::DoNotOptimize(R.ValueChecksum);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kTxnsPerThread);
}

void benchDisjoint(benchmark::State &State, TmKind Kind) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto M = createTm(Kind, Threads * 32, Threads);
    RunResult R = runDisjoint(*M, Threads, kTxnsPerThread, 32, 4, 42);
    benchmark::DoNotOptimize(R.ValueChecksum);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kTxnsPerThread);
}

void benchReadDominated(benchmark::State &State, TmKind Kind) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto M = createTm(Kind, 1024, Threads);
    RunResult R = runZipfMix(*M, Threads, kTxnsPerThread, 8,
                             /*ReadProb=*/0.9, /*Theta=*/0.8, 42);
    benchmark::DoNotOptimize(R.ValueChecksum);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kTxnsPerThread);
}

void benchWriteHeavy(benchmark::State &State, TmKind Kind) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto M = createTm(Kind, 1024, Threads);
    RunResult R = runZipfMix(*M, Threads, kTxnsPerThread, 4,
                             /*ReadProb=*/0.5, /*Theta=*/0.9, 42);
    benchmark::DoNotOptimize(R.ValueChecksum);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kTxnsPerThread);
}

} // namespace

#define PTM_BENCH_ALL(fn)                                                     \
  BENCHMARK_CAPTURE(fn, glock, TmKind::TK_GlobalLock)                         \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, tl2, TmKind::TK_Tl2)                                  \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, norec, TmKind::TK_Norec)                              \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, orec_incr, TmKind::TK_OrecIncremental)                \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, orec_eager, TmKind::TK_OrecEager)                     \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, tlrw, TmKind::TK_Tlrw)                                \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();                \
  BENCHMARK_CAPTURE(fn, tml, TmKind::TK_Tml)                                  \
      ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

PTM_BENCH_ALL(benchHotspot)
PTM_BENCH_ALL(benchDisjoint)
PTM_BENCH_ALL(benchReadDominated)
PTM_BENCH_ALL(benchWriteHeavy)

BENCHMARK_MAIN();
