//===-- bench/bench_throughput.cpp - Experiment E7 ------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E7 — systems-style STM throughput comparison.**
///
/// Committed transactions/second for each TM across the four canonical
/// workload shapes (hotspot, disjoint, read-dominated Zipf, write-heavy
/// Zipf) at each thread count. This is the experiment every TM paper the
/// reproduction cites runs (TL2 [7], NOrec [6], TLRW [9]); the expected
/// *shape*:
///
///  * disjoint: everything scales; glock is the floor (serializes).
///  * hotspot: nothing scales (single item); glock often wins — no wasted
///    speculation; strong progressiveness keeps everyone live.
///  * read-dominated: tl2/norec win (O(1)-validated invisible reads);
///    orec-incr pays quadratic validation; tlrw pays a CAS per read.
///  * write-heavy skewed: locking/validation costs mix; norec's single
///    commit point throttles scaling.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "stm/Tm.h"
#include "workload/Workload.h"

#include <functional>
#include <string>
#include <vector>

using namespace ptm;

namespace {

void benchStmThroughput(bench::BenchContext &Ctx) {
  const uint64_t Txns = Ctx.pick<uint64_t>(3000, 400);
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {1, 2}));

  struct Shape {
    std::string Label;
    std::function<RunResult(Tm &, unsigned)> Run;
  };
  const std::vector<Shape> Shapes = {
      {"hotspot",
       [Txns](Tm &M, unsigned Threads) {
         return runHotspot(M, Threads, Txns);
       }},
      {"disjoint",
       [Txns](Tm &M, unsigned Threads) {
         return runDisjoint(M, Threads, Txns, 32, 4, 42);
       }},
      {"read_zipf",
       [Txns](Tm &M, unsigned Threads) {
         return runZipfMix(M, Threads, Txns, 8, /*ReadProb=*/0.9,
                           /*Theta=*/0.8, 42);
       }},
      {"write_zipf",
       [Txns](Tm &M, unsigned Threads) {
         return runZipfMix(M, Threads, Txns, 4, /*ReadProb=*/0.5,
                           /*Theta=*/0.9, 42);
       }},
  };

  auto ObjectsFor = [](const std::string &Shape, unsigned Threads) {
    if (Shape == "hotspot")
      return 1u;
    if (Shape == "disjoint")
      return Threads * 32u;
    return 1024u;
  };

  for (const Shape &S : Shapes) {
    for (TmKind Kind : allTmKinds()) {
      for (unsigned N : Counts) {
        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = N;
        Row.Params = {bench::param("workload", S.Label),
                      bench::param("txns_per_thread", Txns)};
        Row.Metric = "throughput";
        Row.Unit = "txn/s";
        Row.Stats = Ctx.measure([&] {
          auto M = createTm(Kind, ObjectsFor(S.Label, N), N);
          return S.Run(*M, N).throughputPerSec();
        });
        Ctx.report(Row);
      }
    }
  }
}

} // namespace

PTM_BENCHMARK("stm_throughput", "throughput",
              "Section 6 context: committed transactions per second across "
              "the canonical workload shapes — the wall-clock face of the "
              "validation-cost trade-offs Theorem 3 formalizes",
              benchStmThroughput);
