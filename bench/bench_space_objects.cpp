//===-- bench/bench_space_objects.cpp - Experiment E2 ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E2 — Theorem 3(2): space complexity of the last t-read.**
///
/// For each TM and read-set size m, one thread reads m-1 objects and we
/// bracket the *m-th t-read plus tryCommit*, counting the distinct base
/// objects accessed. The paper proves any strictly serializable weak-DAP
/// invisible-read TM has executions where this count is at least m-1; the
/// subject TM meets it, the escape-hatch TMs stay O(1).
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <vector>

using namespace ptm;

static uint64_t distinctInLastReadAndCommit(TmKind Kind, unsigned M) {
  auto Tm = createTm(Kind, M, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);

  Tm->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj + 1 < M; ++Obj)
    if (!Tm->txRead(0, Obj, V))
      return 0;

  Instr.beginOp();
  if (!Tm->txRead(0, M - 1, V))
    return 0;
  (void)Tm->txCommit(0);
  return Instr.endOp().DistinctObjects;
}

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E2  Theorem 3(2): distinct base objects accessed during the\n";
  OS << "    m-th t-read + tryCommit of a read-only transaction\n";
  OS << "==============================================================\n\n";

  const std::vector<unsigned> Sizes = {2, 4, 8, 16, 32, 64, 128, 256, 512};

  std::vector<std::string> Header = {"m", "bound(m-1)"};
  for (TmKind Kind : allTmKinds())
    Header.push_back(tmKindName(Kind));

  TablePrinter Table(Header);
  for (unsigned M : Sizes) {
    std::vector<std::string> Row = {formatInt(uint64_t{M}),
                                    formatInt(uint64_t{M - 1})};
    for (TmKind Kind : allTmKinds())
      Row.push_back(formatInt(distinctInLastReadAndCommit(Kind, M)));
    Table.addRow(Row);
  }

  OS << "Distinct base objects (expect >= m-1 for orec-incr — the paper's\n"
     << "lower bound — and O(1) for the TMs that drop a hypothesis):\n";
  Table.print(OS);
  OS.flush();
  return 0;
}
