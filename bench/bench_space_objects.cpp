//===-- bench/bench_space_objects.cpp - Experiment E2 ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E2 — Theorem 3(2): space complexity of the last t-read.**
///
/// For each TM and read-set size m, one thread reads m-1 objects and we
/// bracket the *m-th t-read plus tryCommit*, counting the distinct base
/// objects accessed. The paper proves any strictly serializable weak-DAP
/// invisible-read TM has executions where this count is at least m-1; the
/// subject TM meets it, the escape-hatch TMs stay O(1).
///
/// Metric per (TM, m): distinct_base_objects — deterministic model count;
/// expect >= m-1 for orec-incr/orec-eager (the paper's lower bound) and
/// O(1) for the TMs that drop a hypothesis.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "runtime/Instrumentation.h"
#include "stm/Stm.h"

#include <vector>

using namespace ptm;

namespace {

uint64_t distinctInLastReadAndCommit(TmKind Kind, unsigned M) {
  auto Tm = createTm(Kind, M, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);

  Tm->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj + 1 < M; ++Obj)
    if (!Tm->txRead(0, Obj, V))
      return 0;

  Instr.beginOp();
  if (!Tm->txRead(0, M - 1, V))
    return 0;
  (void)Tm->txCommit(0);
  return Instr.endOp().DistinctObjects;
}

void benchSpaceObjects(bench::BenchContext &Ctx) {
  const std::vector<unsigned> Sizes =
      Ctx.pick<std::vector<unsigned>>({2, 4, 8, 16, 32, 64, 128, 256, 512},
                                      {2, 8, 32});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned M : Sizes) {
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = 1;
      Row.Params = {bench::param("m", uint64_t{M}),
                    bench::param("bound", uint64_t{M - 1})};
      Row.Metric = "distinct_base_objects";
      Row.Unit = "objects";
      Row.Stats = bench::SampleStats::once(
          static_cast<double>(distinctInLastReadAndCommit(Kind, M)));
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("space_objects", "space",
              "Theorem 3(2): the m-th t-read plus tryCommit of a read-only "
              "transaction must access >= m-1 distinct base objects on any "
              "strictly serializable weak-DAP invisible-read TM",
              benchSpaceObjects);
