//===-- bench/bench_mutex_throughput.cpp - Experiment E4 ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E4 — wall-clock passage throughput of the locks.**
///
/// Complements E3's simulated RMR counts with real time: passages/second
/// for each baseline lock and each TmMutex (Algorithm 1) instantiation.
/// Each repetition builds a fresh lock and runs a full parallel phase of
/// fixed passages so the thread count is controlled by us, not by the
/// scheduler; the harness applies the warmup + repetition policy.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "mutex/Mutex.h"
#include "stm/Tm.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

/// Runs the parallel passage phase and returns passages per second.
double passagesPerSec(Mutex &Lock, unsigned Threads,
                      uint64_t PassagesPerThread) {
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (uint64_t P = 0; P < PassagesPerThread; ++P) {
        Lock.enter(T);
        // The (empty) critical section.
        Lock.exit(T);
      }
    });
  }
  while (Ready.load() != Threads)
    std::this_thread::yield();
  auto Start = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  auto End = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(End - Start).count();
  return Seconds > 0.0
             ? static_cast<double>(Threads * PassagesPerThread) / Seconds
             : 0.0;
}

void benchMutexThroughput(bench::BenchContext &Ctx) {
  const uint64_t Passages = Ctx.pick<uint64_t>(2000, 400);
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {1, 2}));

  struct Subject {
    std::string Label;
    std::function<std::unique_ptr<Mutex>(unsigned)> Make;
  };
  std::vector<Subject> Subjects;
  for (MutexKind Kind : allMutexKinds())
    Subjects.push_back({mutexKindName(Kind),
                        [Kind](unsigned N) { return createMutex(Kind, N); }});
  for (TmKind Kind : allTmKinds()) {
    std::string Label = std::string("tm(") + tmKindName(Kind) + ")";
    Subjects.push_back(
        {Label, [Kind](unsigned N) { return createTmMutex(Kind, N); }});
  }

  for (const Subject &S : Subjects) {
    for (unsigned N : Counts) {
      bench::ResultRow Row;
      Row.Tm = S.Label;
      Row.Threads = N;
      Row.Params = {bench::param("passages_per_thread", Passages)};
      Row.Metric = "throughput";
      Row.Unit = "passage/s";
      Row.Stats = Ctx.measure([&] {
        auto Lock = S.Make(N);
        return passagesPerSec(*Lock, N, Passages);
      });
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("mutex_throughput", "throughput",
              "Theorem 7 in wall-clock terms: Algorithm 1's mutex-from-TM "
              "construction against the classical baseline locks "
              "(TAS/TTAS/ticket/MCS/CLH), passages per second",
              benchMutexThroughput);
