//===-- bench/bench_mutex_throughput.cpp - Experiment E4 ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E4 — wall-clock passage throughput of the locks.**
///
/// Complements E3's simulated RMR counts with real time: passages/second
/// for each lock at 1..4 threads (google-benchmark). Each benchmark
/// iteration runs a full parallel phase of fixed passages so the thread
/// count is controlled by us, not by the framework.
///
//===----------------------------------------------------------------------===//

#include "mutex/Mutex.h"
#include "stm/Tm.h"

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

using namespace ptm;

namespace {

constexpr uint64_t kPassagesPerThread = 2000;

void runPassages(Mutex &Lock, unsigned Threads) {
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Lock, T] {
      for (uint64_t P = 0; P < kPassagesPerThread; ++P) {
        Lock.enter(T);
        benchmark::ClobberMemory(); // The (empty) critical section.
        Lock.exit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
}

void benchBaseline(benchmark::State &State, MutexKind Kind) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto Lock = createMutex(Kind, Threads);
    runPassages(*Lock, Threads);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kPassagesPerThread);
}

void benchTmMutex(benchmark::State &State, TmKind Inner) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto Lock = createTmMutex(Inner, Threads);
    runPassages(*Lock, Threads);
  }
  State.SetItemsProcessed(State.iterations() * Threads * kPassagesPerThread);
}

} // namespace

BENCHMARK_CAPTURE(benchBaseline, tas, MutexKind::MK_Tas)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchBaseline, ttas, MutexKind::MK_Ttas)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchBaseline, ticket, MutexKind::MK_Ticket)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchBaseline, mcs, MutexKind::MK_Mcs)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchBaseline, clh, MutexKind::MK_Clh)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_glock, TmKind::TK_GlobalLock)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_tl2, TmKind::TK_Tl2)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_norec, TmKind::TK_Norec)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_orec_incr, TmKind::TK_OrecIncremental)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_orec_eager, TmKind::TK_OrecEager)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_tlrw, TmKind::TK_Tlrw)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(benchTmMutex, tm_tml, TmKind::TK_Tml)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
