//===-- bench/bench_ablation_validation.cpp - Experiment E6 ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E6 — validation-strategy ablation under write contention.**
///
/// The paper's Section 6 observes that each hypothesis of Theorem 3 names
/// a design decision: incremental per-object validation (orec-incr),
/// a global clock (tl2), value-based revalidation (norec), or visible
/// reads (tlrw). This experiment compares the *practical* cost of those
/// strategies: a reader thread repeatedly snapshots m objects while one
/// writer thread keeps faulting random objects in the range.
///
/// Metrics per (TM, m): reader us_per_txn (wall-clock microseconds per
/// committed transaction), steps_per_txn, and aborts_per_100 commits.
/// Expected shape: orec-incr steps/txn grow quadratically in m and suffer
/// the most aborts (every faulted object kills the snapshot); tl2/norec
/// grow linearly; tlrw pays locking but never validates; glock never
/// aborts but serializes everything.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "runtime/Instrumentation.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

struct Outcome {
  double MicrosPerTxn = 0.0;
  double StepsPerTxn = 0.0;
  double AbortsPer100 = 0.0;
};

Outcome run(TmKind Kind, unsigned M, uint64_t ReaderTxns) {
  auto Tm = createTm(Kind, M, 2);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ReaderSteps{0};
  std::atomic<uint64_t> ReaderAborts{0};
  std::atomic<double> ReaderSeconds{0.0};

  std::thread Writer([&] {
    Xoshiro256 Rng(99);
    uint64_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(M));
      atomically(*Tm, 1, [&](TxRef &Tx) {
        uint64_t V = Tx.readOr(Obj, 0);
        Tx.write(Obj, V + 1);
      });
      // Fault roughly every few microseconds, not continuously, so the
      // reader can make progress on 2 cores.
      if (++I % 8 == 0)
        std::this_thread::yield();
    }
  });

  std::thread Reader([&] {
    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    uint64_t Aborts = 0;
    auto Start = std::chrono::steady_clock::now();
    for (uint64_t T = 0; T < ReaderTxns; ++T) {
      for (;;) {
        Tm->txBegin(0);
        bool Ok = true;
        uint64_t V;
        for (ObjectId Obj = 0; Obj < M; ++Obj) {
          if (!Tm->txRead(0, Obj, V)) {
            Ok = false;
            break;
          }
        }
        if (Ok && Tm->txCommit(0))
          break;
        ++Aborts;
      }
    }
    auto End = std::chrono::steady_clock::now();
    ReaderSeconds.store(std::chrono::duration<double>(End - Start).count());
    ReaderSteps.store(Instr.totalSteps());
    ReaderAborts.store(Aborts);
  });

  Reader.join();
  Stop.store(true);
  Writer.join();

  Outcome R;
  R.MicrosPerTxn =
      ReaderSeconds.load() * 1e6 / static_cast<double>(ReaderTxns);
  R.StepsPerTxn =
      static_cast<double>(ReaderSteps.load()) / static_cast<double>(ReaderTxns);
  R.AbortsPer100 = static_cast<double>(ReaderAborts.load()) * 100.0 /
                   static_cast<double>(ReaderTxns);
  return R;
}

void benchAblationValidation(bench::BenchContext &Ctx) {
  const std::vector<unsigned> Sizes =
      Ctx.pick<std::vector<unsigned>>({16, 64, 256}, {16, 64});
  const uint64_t ReaderTxns = Ctx.pick<uint64_t>(300, 60);

  for (TmKind Kind : allTmKinds()) {
    for (unsigned M : Sizes) {
      // One contended run yields all three metrics; apply the warmup +
      // repetition policy to the run as a whole so every metric carries
      // real run-to-run variance.
      for (unsigned I = 0; I < Ctx.warmup(); ++I)
        (void)run(Kind, M, ReaderTxns);
      std::vector<double> Us, Steps, Aborts;
      for (unsigned I = 0; I < Ctx.reps(); ++I) {
        Outcome R = run(Kind, M, ReaderTxns);
        Us.push_back(R.MicrosPerTxn);
        Steps.push_back(R.StepsPerTxn);
        Aborts.push_back(R.AbortsPer100);
      }

      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = 2;
      Row.Params = {bench::param("m", uint64_t{M}),
                    bench::param("reader_txns", ReaderTxns)};

      Row.Metric = "us_per_txn";
      Row.Unit = "us";
      Row.Stats = bench::SampleStats::compute(std::move(Us));
      Ctx.report(Row);

      Row.Metric = "steps_per_txn";
      Row.Unit = "steps";
      Row.Stats = bench::SampleStats::compute(std::move(Steps));
      Ctx.report(Row);

      Row.Metric = "aborts_per_100";
      Row.Unit = "aborts";
      Row.Stats = bench::SampleStats::compute(std::move(Aborts));
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("ablation_validation", "ablation",
              "Section 6: the practical cost of each Theorem 3 escape "
              "hatch — incremental validation (orec-incr) vs global clock "
              "(tl2) vs value validation (norec) vs visible reads (tlrw), "
              "reader snapshotting m objects against a faulting writer",
              benchAblationValidation);
