//===-- bench/bench_ablation_validation.cpp - Experiment E6 ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E6 — validation-strategy ablation under write contention.**
///
/// The paper's Section 6 observes that each hypothesis of Theorem 3 names
/// a design decision: incremental per-object validation (orec-incr),
/// a global clock (tl2), value-based revalidation (norec), or visible
/// reads (tlrw). This experiment compares the *practical* cost of those
/// strategies: a reader thread repeatedly snapshots m objects while one
/// writer thread keeps faulting random objects in the range.
///
/// Reported per (TM, m): reader wall-clock microseconds per committed
/// transaction, reader steps per committed transaction, and reader aborts
/// per 100 commits.
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

struct Outcome {
  double MicrosPerTxn = 0.0;
  double StepsPerTxn = 0.0;
  double AbortsPer100 = 0.0;
};

Outcome run(TmKind Kind, unsigned M) {
  auto Tm = createTm(Kind, M, 2);
  constexpr uint64_t ReaderTxns = 300;

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ReaderSteps{0};
  std::atomic<uint64_t> ReaderAborts{0};
  std::atomic<double> ReaderSeconds{0.0};

  std::thread Writer([&] {
    Xoshiro256 Rng(99);
    uint64_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(M));
      atomically(*Tm, 1, [&](TxRef &Tx) {
        uint64_t V = Tx.readOr(Obj, 0);
        Tx.write(Obj, V + 1);
      });
      // Fault roughly every few microseconds, not continuously, so the
      // reader can make progress on 2 cores.
      if (++I % 8 == 0)
        std::this_thread::yield();
    }
  });

  std::thread Reader([&] {
    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    uint64_t Aborts = 0;
    auto Start = std::chrono::steady_clock::now();
    for (uint64_t T = 0; T < ReaderTxns; ++T) {
      for (;;) {
        Tm->txBegin(0);
        bool Ok = true;
        uint64_t V;
        for (ObjectId Obj = 0; Obj < M; ++Obj) {
          if (!Tm->txRead(0, Obj, V)) {
            Ok = false;
            break;
          }
        }
        if (Ok && Tm->txCommit(0))
          break;
        ++Aborts;
      }
    }
    auto End = std::chrono::steady_clock::now();
    ReaderSeconds.store(std::chrono::duration<double>(End - Start).count());
    ReaderSteps.store(Instr.totalSteps());
    ReaderAborts.store(Aborts);
  });

  Reader.join();
  Stop.store(true);
  Writer.join();

  Outcome R;
  R.MicrosPerTxn = ReaderSeconds.load() * 1e6 / ReaderTxns;
  R.StepsPerTxn = static_cast<double>(ReaderSteps.load()) / ReaderTxns;
  R.AbortsPer100 = static_cast<double>(ReaderAborts.load()) * 100.0 /
                   static_cast<double>(ReaderTxns);
  return R;
}

} // namespace

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E6  Validation-strategy ablation: reader of m objects vs one\n";
  OS << "    faulting writer (2 threads)\n";
  OS << "==============================================================\n\n";

  const std::vector<unsigned> Sizes = {16, 64, 256};

  TablePrinter Table({"tm", "m", "us/txn", "steps/txn", "aborts/100"});
  for (TmKind Kind : allTmKinds()) {
    for (unsigned M : Sizes) {
      Outcome R = run(Kind, M);
      Table.addRow({tmKindName(Kind), formatInt(uint64_t{M}),
                    formatDouble(R.MicrosPerTxn, 1),
                    formatDouble(R.StepsPerTxn, 1),
                    formatDouble(R.AbortsPer100, 1)});
    }
  }
  Table.print(OS);

  OS << "Expected shape: orec-incr steps/txn grow quadratically in m and\n"
     << "suffer the most aborts (every faulted object kills the snapshot);\n"
     << "tl2/norec grow linearly; tlrw pays locking but never validates;\n"
     << "glock never aborts but serializes everything.\n";
  OS.flush();
  return 0;
}
