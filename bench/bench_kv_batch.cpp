//===-- bench/bench_kv_batch.cpp - KV batching latency/abort trade --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **kv_batch — batch size vs latency/abort trade of the async executor.**
///
/// The RequestExecutor drains each shard's queue in batches of up to B
/// requests per transaction. B is a pure service-layer knob with a
/// TM-theoretic bill attached: one commit amortizes over B operations
/// (throughput up), but the transaction's read/write set is B operations
/// wide, so each conflict aborts more work and revalidation costs more —
/// for the Theorem 3 TMs (orec-incr) quadratically more. Latency adds
/// the time a request waits for its batch to fill and commit.
///
/// Fixed thread structure (clients + workers), so --threads is not
/// consumed. Metrics per (TM, batch): completed requests per second,
/// mean submit-to-done latency, and the abort ratio of the shard TMs.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "kv/Kv.h"
#include "stm/Tm.h"
#include "workload/KvWorkload.h"

#include <vector>

using namespace ptm;

namespace {

void benchKvBatch(bench::BenchContext &Ctx) {
  const uint64_t Ops = Ctx.pick<uint64_t>(4000, 400);
  const uint64_t KeySpace = Ctx.pick<uint64_t>(1024, 128);
  const unsigned Clients = 2;
  const unsigned Workers = 2;
  const std::vector<unsigned> Batches =
      Ctx.pick<std::vector<unsigned>>({1, 4, 16, 64}, {1, 8});
  const std::vector<TmKind> Kinds = {TmKind::TK_GlobalLock, TmKind::TK_Tl2,
                                     TmKind::TK_Norec,
                                     TmKind::TK_OrecIncremental};

  for (TmKind Kind : Kinds) {
    for (unsigned Batch : Batches) {
      // One run feeds three metrics, so measure them together per rep:
      // collect samples of each and report three rows sharing params.
      bench::SampleStats Throughput, Latency, P99, P999, AbortRatio;
      std::vector<double> ThroughputSamples, LatencySamples, P99Samples,
          P999Samples, AbortSamples;
      auto RunOnce = [&] {
        kv::KvConfig Cfg;
        Cfg.ShardCount = 4;
        Cfg.BucketsPerShard = 64;
        Cfg.CapacityPerShard = KeySpace + 1;
        Cfg.Kind = Kind;
        Cfg.MaxThreads = Workers;
        auto Store = kv::KvStore::create(Cfg);
        KvExecutorConfig Load;
        Load.Clients = Clients;
        Load.Workers = Workers;
        Load.OpsPerClient = Ops;
        Load.MaxBatch = Batch;
        Load.Pipeline = 2 * Batch > 32 ? 2 * Batch : 32;
        Load.KeySpace = KeySpace;
        Load.Seed = 42;
        KvExecutorMetrics Metrics;
        RunResult R = runKvExecutorLoad(*Store, Load, &Metrics);
        double Ratio =
            R.Commits + R.Aborts == 0
                ? 0.0
                : 100.0 * static_cast<double>(R.Aborts) /
                      static_cast<double>(R.Commits + R.Aborts);
        ThroughputSamples.push_back(
            R.Seconds > 0 ? static_cast<double>(Metrics.Completed) / R.Seconds
                          : 0.0);
        LatencySamples.push_back(Metrics.MeanLatencyUs);
        P99Samples.push_back(Metrics.P99Us);
        P999Samples.push_back(Metrics.P999Us);
        AbortSamples.push_back(Ratio);
        return ThroughputSamples.back();
      };
      // measure() applies the warmup/rep policy to the throughput sample;
      // the companion metrics are recorded by the same runs, then sliced
      // to the measured repetitions (warmups sit at the front).
      Throughput = Ctx.measure(RunOnce);
      auto Tail = [&](const std::vector<double> &All) {
        std::vector<double> Measured(
            All.end() - static_cast<long>(Throughput.reps()), All.end());
        return bench::SampleStats::compute(std::move(Measured));
      };
      Latency = Tail(LatencySamples);
      P99 = Tail(P99Samples);
      P999 = Tail(P999Samples);
      AbortRatio = Tail(AbortSamples);

      // std::string parameters sidestep a GCC 12 -Wrestrict false
      // positive on const char* assignment into the row fields.
      auto Report = [&](const std::string &Metric, const std::string &Unit,
                        const bench::SampleStats &Stats) {
        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = Clients + Workers;
        Row.Params = {bench::param("batch", uint64_t{Batch}),
                      bench::param("clients", uint64_t{Clients}),
                      bench::param("workers", uint64_t{Workers}),
                      bench::param("ops_per_client", Ops)};
        Row.Metric = Metric;
        Row.Unit = Unit;
        Row.Stats = Stats;
        Ctx.report(Row);
      };
      Report("completed_throughput", "op/s", Throughput);
      Report("mean_latency", "us", Latency);
      Report("p99_latency", "us", P99);
      Report("p999_latency", "us", P999);
      Report("abort_ratio", "%", AbortRatio);
    }
  }
}

} // namespace

PTM_BENCHMARK("kv_batch", "kv_batch",
              "Operation batching at the service layer: one commit "
              "amortizes over B queued requests, but the batch transaction "
              "carries a B-wide read/write set, so conflicts abort more "
              "work — throughput vs latency vs abort-ratio as B sweeps",
              benchKvBatch);
