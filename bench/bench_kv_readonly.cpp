//===-- bench/bench_kv_readonly.cpp - Scan snapshots vs writer rate -------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **kv_readonly — scan-snapshot throughput as the writer rate rises.**
///
/// The multi-version TM's design point, measured end-to-end: a fixed
/// pool of readers issues long multi-key snapshotGets (analytics-scan
/// scale, a large fraction of the key space per call) while 0..N
/// deadline-paced update threads put single keys at a fixed wall-clock
/// rate. The pacing makes the swept axis honest — every TM's readers
/// face the same realized write rate (see KvReadOnlyConfig) — so the
/// reader-side curves are directly comparable. Three rows per
/// configuration:
///
///  * read_throughput — completed snapshotGets per second. A scan under
///    a single-version TM (tl2, orec-ts) must revalidate against the
///    one current version: any concurrent commit that overwrites a key
///    the scan read kills the whole shard transaction, and the longer
///    the scan, the more commits it is exposed to — its curve sinks as
///    writers are added. mv pins one shared-clock timestamp and serves
///    every read from the version rings; no concurrent commit can touch
///    it, so its curve must stay near-flat (residual slope = writer CPU
///    and wakeup preemptions, not protocol);
///  * ro_aborts — TM aborts charged to reader thread slots, summed over
///    the measured runs. For mv this is identically zero BY CONSTRUCTION
///    (abort-free read-only mode), not just statistically; any nonzero
///    value is a protocol bug. For tl2/orec-ts it counts the scan
///    retries behind the throughput loss (orec-ts lower than tl2:
///    timestamp extension absorbs commits that miss the read set);
///  * writer_throughput — writer-slot commits per second, the other side
///    of the trade: the paced writers sustain their configured rate
///    against mv readers (which never block them) and against single-key
///    puts' shared latches, so roughly equal numbers here certify the
///    comparison was fair, not that some TM quietly starved its writers.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "kv/Kv.h"
#include "stm/Tm.h"
#include "workload/KvWorkload.h"

#include <vector>

using namespace ptm;

namespace {

void benchKvReadonly(bench::BenchContext &Ctx) {
  const uint64_t Snapshots = Ctx.pick<uint64_t>(400, 100);
  // Scan scale on purpose: each snapshot covers a quarter of the key
  // space, so it is long enough to overlap paced commits — the exposure
  // that separates validating readers from version-ring readers.
  const uint64_t KeySpace = Ctx.pick<uint64_t>(8192, 4096);
  // Same absolute scan length either way: the exposure window (keys per
  // snapshot times paced write rate) is what separates the TMs, and
  // shrinking it under --smoke would shrink the measured effect, not
  // just the runtime.
  const unsigned SnapshotKeys =
      static_cast<unsigned>(Ctx.pick<uint64_t>(KeySpace / 4, KeySpace / 2));
  const unsigned Readers = 2;
  const std::vector<unsigned> WriterCounts =
      Ctx.pick<std::vector<unsigned>>({0, 1, 2, 4}, {0, 1, 2});

  // The contrast set, not the full roster: mv against the two strongest
  // single-version read paths (tl2 = the update-side template, orec-ts =
  // the extension-based improvement).
  const TmKind Kinds[] = {TmKind::TK_Mv, TmKind::TK_OrecTs, TmKind::TK_Tl2};

  for (TmKind Kind : Kinds) {
    for (unsigned Writers : WriterCounts) {
      auto MakeStore = [&] {
        kv::KvConfig Cfg;
        Cfg.ShardCount = 4;
        Cfg.BucketsPerShard = 1024;
        // Worst case: the whole key space plus writer churn in one shard.
        Cfg.CapacityPerShard = KeySpace + 16;
        Cfg.Kind = Kind;
        Cfg.MaxThreads = Readers + Writers;
        return kv::KvStore::create(Cfg);
      };
      KvReadOnlyConfig RoCfg;
      RoCfg.SnapshotsPerReader = Snapshots;
      RoCfg.Readers = Readers;
      RoCfg.Writers = Writers;
      RoCfg.SnapshotKeys = SnapshotKeys;
      RoCfg.KeySpace = KeySpace;
      RoCfg.WriterOpsPerSec = 4000;
      RoCfg.Theta = 0.9;
      RoCfg.Seed = 42;

      std::vector<bench::Param> Params = {
          bench::param("writers", uint64_t{Writers}),
          bench::param("readers", uint64_t{Readers}),
          bench::param("snapshot_keys", uint64_t{SnapshotKeys}),
          bench::param("writer_ops_per_sec",
                       uint64_t{RoCfg.WriterOpsPerSec}),
          bench::param("keyspace", KeySpace)};

      bench::ResultRow Throughput;
      Throughput.Tm = tmKindName(Kind);
      Throughput.Threads = Readers + Writers;
      Throughput.Params = Params;
      Throughput.Metric = "read_throughput";
      Throughput.Unit = "snapshots/s";
      // Side channels accumulated across the measured runs and reported
      // as their own rows. Aborts as a sum (a max would hide a rare
      // leak; the mv claim is *identically* zero, so the sum is the
      // honest form), writer commits as total-over-total-time.
      uint64_t ReaderAborts = 0;
      uint64_t WriterCommits = 0;
      uint64_t AllCommits = 0;
      uint64_t AllAborts = 0;
      double WriterSeconds = 0.0;
      Throughput.Stats = Ctx.measure([&] {
        auto Store = MakeStore();
        KvReadOnlyMetrics Metrics;
        RunResult R = runKvReadOnly(*Store, RoCfg, &Metrics);
        ReaderAborts += Metrics.ReaderAborts;
        WriterCommits += Metrics.WriterCommits;
        AllCommits += R.Commits;
        AllAborts += R.Aborts;
        WriterSeconds += R.Seconds;
        return Metrics.SnapshotsPerSec;
      });
      Ctx.report(Throughput);

      bench::ResultRow Aborts;
      Aborts.Tm = tmKindName(Kind);
      Aborts.Threads = Readers + Writers;
      Aborts.Params = Params;
      Aborts.Metric = "ro_aborts";
      Aborts.Unit = "aborts";
      Aborts.Stats = bench::SampleStats::once(static_cast<double>(ReaderAborts));
      Ctx.report(Aborts);

      bench::ResultRow WriterTp;
      WriterTp.Tm = tmKindName(Kind);
      WriterTp.Threads = Readers + Writers;
      WriterTp.Params = Params;
      WriterTp.Metric = "writer_throughput";
      WriterTp.Unit = "commits/s";
      WriterTp.Stats = bench::SampleStats::once(
          WriterSeconds > 0.0 ? WriterCommits / WriterSeconds : 0.0);
      Ctx.report(WriterTp);

      // All-role abort ratio over the measured runs — the live
      // telemetry column (reader- and writer-side retries together; the
      // reader-only split is ro_aborts above).
      bench::ResultRow Ratio;
      Ratio.Tm = tmKindName(Kind);
      Ratio.Threads = Readers + Writers;
      Ratio.Params = Params;
      Ratio.Metric = "abort_ratio";
      Ratio.Unit = "%";
      uint64_t Tried = AllCommits + AllAborts;
      Ratio.Stats = bench::SampleStats::once(
          Tried == 0 ? 0.0
                     : 100.0 * static_cast<double>(AllAborts) /
                           static_cast<double>(Tried));
      Ctx.report(Ratio);
    }
  }
}

} // namespace

PTM_BENCHMARK("kv_readonly", "kv_readonly",
              "Partial wait-freedom priced end-to-end: multi-version scan "
              "snapshots pinned to one shared-clock timestamp hold their "
              "read throughput as the writer rate rises and abort exactly "
              "zero read-only transactions, while single-version TMs pay "
              "for every concurrent commit with whole-scan retries",
              benchKvReadonly);
