//===-- bench/bench_ds_set.cpp - Structure-scale Theorem 3 sweep ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **ds_set — Theorem 3 at data-structure scale.**
///
/// The paper's Θ(m²) incremental-validation bound is stated over an
/// m-read transaction; the most natural way applications produce large
/// read sets is *traversal*. Here the read-set size is a structure
/// property: a miss probe of an n-node TxSet performs 2n+1 t-reads
/// (head + per-node key and next), so sweeping the list size n sweeps the
/// paper's m, and the per-operation step counts reproduce the bound as a
/// systems observation:
///
///   contains_steps   — one full-traversal miss probe (read-only):
///                      quadratic in n for orec-incr/orec-eager, linear
///                      for glock/tl2/norec/tlrw/tml.
///   steps_per_node   — contains_steps / n: linear vs flat, the
///                      same separation normalized per node.
///   tail_update_steps— remove+reinsert of the largest key in one
///                      transaction: the write path pays the same
///                      traversal validation plus commit-time locking.
///
/// All counts are deterministic model metrics (single-threaded, solo
/// transactions, SampleStats::once) — reproducible on any host.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "ds/Ds.h"
#include "runtime/Instrumentation.h"
#include "stm/Stm.h"

#include <vector>

using namespace ptm;

namespace {

struct Measurement {
  uint64_t ContainsSteps = 0;
  uint64_t TailUpdateSteps = 0;
};

/// Builds an n-key set (keys 2, 4, ..., 2n) and measures one solo
/// full-traversal miss probe (key 2n+1) and one tail remove+reinsert.
Measurement measure(TmKind Kind, unsigned N) {
  uint64_t Capacity = N + 1;
  auto M = createTm(Kind, ds::TxSet::objectsNeeded(Capacity), 1);
  ds::TxSet Set(*M, 0, Capacity);
  for (unsigned I = 1; I <= N; ++I)
    Set.insert(/*Tid=*/0, 2 * static_cast<uint64_t>(I));

  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  Measurement Result;

  Instr.beginOp();
  bool Found = Set.contains(/*Tid=*/0, 2 * static_cast<uint64_t>(N) + 1);
  Result.ContainsSteps = Instr.endOp().Steps;
  if (Found)
    return {}; // Cannot happen solo; keeps the harness honest.

  Instr.beginOp();
  bool Ok = false;
  atomically(*M, 0, [&](TxRef &Tx) {
    uint64_t Tail = 2 * static_cast<uint64_t>(N);
    Ok = Set.remove(Tx, Tail) && Set.insert(Tx, Tail);
  });
  Result.TailUpdateSteps = Instr.endOp().Steps;
  if (!Ok)
    return {};
  return Result;
}

void benchDsSet(bench::BenchContext &Ctx) {
  const std::vector<unsigned> Sizes = Ctx.pick<std::vector<unsigned>>(
      {8, 16, 32, 64, 128, 256, 512}, {4, 8, 16});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned N : Sizes) {
      Measurement R = measure(Kind, N);
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = 1;
      Row.Params = {bench::param("n", uint64_t{N})};

      Row.Metric = "contains_steps";
      Row.Unit = "steps";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.ContainsSteps));
      Ctx.report(Row);

      Row.Metric = "steps_per_node";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.ContainsSteps) / N);
      Ctx.report(Row);

      Row.Metric = "tail_update_steps";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.TailUpdateSteps));
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("ds_set_traversal", "ds_set",
              "Theorem 3 at structure scale: a miss probe of an n-node "
              "transactional list is a (2n+1)-read transaction, so per-op "
              "traversal cost grows quadratically in n on orec-incr/"
              "orec-eager and linearly on every escape-hatch TM",
              benchDsSet);
