//===-- bench/bench_ds_set.cpp - Structure-scale Theorem 3 sweep ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **ds_set — Theorem 3 at data-structure scale.**
///
/// The paper's Θ(m²) incremental-validation bound is stated over an
/// m-read transaction; the most natural way applications produce large
/// read sets is *traversal*. Here the read-set size is a structure
/// property: a miss probe of an n-node TxSet performs 2n+1 t-reads
/// (head + per-node key and next), so sweeping the list size n sweeps the
/// paper's m, and the per-operation step counts reproduce the bound as a
/// systems observation:
///
///   contains_steps   — one full-traversal miss probe (read-only):
///                      quadratic in n for orec-incr/orec-eager, linear
///                      for glock/tl2/norec/orec-ts/tlrw/tml (orec-ts
///                      buys the escape with the clock but, unlike tl2,
///                      without spurious read-validation aborts).
///   steps_per_node   — contains_steps / n: linear vs flat, the
///                      same separation normalized per node.
///   tail_update_steps— remove+reinsert of the largest key in one
///                      transaction: the write path pays the same
///                      traversal validation plus commit-time locking.
///   stale_probe_aborts— a traversal of set A, then — mid-transaction — a
///                      *disjoint* commit into set B, then a probe of B,
///                      all in one transaction: aborts until it commits
///                      (attempt-capped). The committed B value post-
///                      dates the probe's snapshot without conflicting
///                      with anything it read, so tl2's clock check
///                      kills it spuriously (1 abort; likewise tml by
///                      design) while orec-ts extends its snapshot and
///                      every other TM revalidates — 0 aborts. This is
///                      the clock-cost-vs-abort-cost trade in one row.
///
/// All counts are deterministic model metrics (single-threaded or
/// two-slot scripted, solo transactions, SampleStats::once) —
/// reproducible on any host.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "ds/Ds.h"
#include "runtime/Instrumentation.h"
#include "stm/Stm.h"

#include <vector>

using namespace ptm;

namespace {

struct Measurement {
  uint64_t ContainsSteps = 0;
  uint64_t TailUpdateSteps = 0;
};

/// Builds an n-key set (keys 2, 4, ..., 2n) and measures one solo
/// full-traversal miss probe (key 2n+1) and one tail remove+reinsert.
Measurement measure(TmKind Kind, unsigned N) {
  uint64_t Capacity = N + 1;
  auto M = createTm(Kind, ds::TxSet::objectsNeeded(Capacity), 1);
  ds::TxSet Set(*M, 0, Capacity);
  for (unsigned I = 1; I <= N; ++I)
    Set.insert(/*Tid=*/0, 2 * static_cast<uint64_t>(I));

  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  Measurement Result;

  Instr.beginOp();
  bool Found = Set.contains(/*Tid=*/0, 2 * static_cast<uint64_t>(N) + 1);
  Result.ContainsSteps = Instr.endOp().Steps;
  if (Found)
    return {}; // Cannot happen solo; keeps the harness honest.

  Instr.beginOp();
  bool Ok = false;
  atomically(*M, 0, [&](TxRef &Tx) {
    uint64_t Tail = 2 * static_cast<uint64_t>(N);
    Ok = Set.remove(Tx, Tail) && Set.insert(Tx, Tail);
  });
  Result.TailUpdateSteps = Instr.endOp().Steps;
  if (!Ok)
    return {};
  return Result;
}

/// Builds an n-key set A and a small side set B, then runs one scripted
/// probe transaction on slot 0: traverse A (miss, a (2n+1)-read set),
/// observe a concurrent slot-1 commit into B, probe B. Returns how many
/// aborts the probe pays before committing (attempt-capped — every TM
/// here converges by the second attempt).
uint64_t measureStaleProbeAborts(TmKind Kind, unsigned N) {
  uint64_t ACapacity = N + 1;
  unsigned AObjs = ds::TxSet::objectsNeeded(ACapacity);
  unsigned BObjs = ds::TxSet::objectsNeeded(4);
  auto M = createTm(Kind, AObjs + BObjs, 2);
  ds::TxSet A(*M, 0, ACapacity);
  ds::TxSet B(*M, AObjs, 4);
  for (unsigned I = 1; I <= N; ++I)
    A.insert(/*Tid=*/0, 2 * static_cast<uint64_t>(I));

  // glock's txBegin blocks while slot 0 is inside its transaction, so the
  // mid-transaction schedule is inexpressible against it (its own kind of
  // correctness); commit to B up front and let its row read 0.
  bool MidTxnCommit = Kind != TmKind::TK_GlobalLock;
  if (!MidTxnCommit)
    B.insert(/*Tid=*/1, 7);

  constexpr unsigned kMaxAttempts = 4;
  uint64_t Aborts = 0;
  for (unsigned Attempt = 0; Attempt < kMaxAttempts; ++Attempt) {
    M->txBegin(0);
    TxRef Tx(*M, 0);
    bool FoundA = A.contains(Tx, 2 * static_cast<uint64_t>(N) + 1);
    if (MidTxnCommit && Attempt == 0) {
      // The adversary: one disjoint commit after the traversal anchored
      // the probe's snapshot. Subsequent attempts run unopposed.
      if (!atomically(*M, /*Tid=*/1,
                      [&](TxRef &T1) { (void)B.insert(T1, 7); }))
        return kMaxAttempts; // Cannot happen; keeps the harness honest.
    }
    bool FoundB = B.contains(Tx, 7);
    if (!Tx.failed() && !FoundA && FoundB && M->txCommit(0))
      return Aborts;
    if (M->txActive(0))
      M->txAbort(0);
    ++Aborts;
  }
  return Aborts;
}

void benchDsSet(bench::BenchContext &Ctx) {
  const std::vector<unsigned> Sizes = Ctx.pick<std::vector<unsigned>>(
      {8, 16, 32, 64, 128, 256, 512}, {4, 8, 16});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned N : Sizes) {
      Measurement R = measure(Kind, N);
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = 1;
      Row.Params = {bench::param("n", uint64_t{N})};

      Row.Metric = "contains_steps";
      Row.Unit = "steps";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.ContainsSteps));
      Ctx.report(Row);

      Row.Metric = "steps_per_node";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.ContainsSteps) / N);
      Ctx.report(Row);

      Row.Metric = "tail_update_steps";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.TailUpdateSteps));
      Ctx.report(Row);

      Row.Metric = "stale_probe_aborts";
      Row.Unit = "aborts";
      Row.Stats = bench::SampleStats::once(
          static_cast<double>(measureStaleProbeAborts(Kind, N)));
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("ds_set_traversal", "ds_set",
              "Theorem 3 at structure scale: a miss probe of an n-node "
              "transactional list is a (2n+1)-read transaction, so per-op "
              "traversal cost grows quadratically in n on orec-incr/"
              "orec-eager and linearly on every escape-hatch TM (incl. "
              "orec-ts, the clock escape without TL2's abort tax)",
              benchDsSet);
