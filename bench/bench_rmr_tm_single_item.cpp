//===-- bench/bench_rmr_tm_single_item.cpp - Experiment E9 ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E9 — Theorem 9 without the mutex detour: RMRs of single-item
/// transactions.**
///
/// Theorem 9 is stated for TMs directly: any strictly serializable,
/// strongly progressive TM built from reads, writes and conditional
/// primitives has executions with n processes on ONE t-object costing
/// Ω(n log n) total RMRs. Here n threads each commit read-modify-write
/// transactions on the single object under a dense round-robin event
/// schedule; the metric is rmrs_per_commit (failed attempts are part of
/// the cost, exactly as in the bound).
///
/// Expected shape: every CAS-based TM's per-commit RMR cost grows with n
/// (conflict retries — the conditional-primitive cost); `glock`, whose
/// transactions never abort, pays only its lock hand-off.
///
/// Rows with status "livelock" mark cells where symmetric contenders
/// stayed in lockstep under the perfectly fair schedule: TLRW's
/// read-then-upgrade pattern does this (all readers acquire, all upgrades
/// fail, all retry in phase) — a real property of reader-upgrade locking
/// that wall-clock schedulers mask with timing noise, reported honestly
/// here. Progressiveness promises abort-on-conflict, not
/// livelock-freedom.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"
#include "runtime/RmrSimulator.h"
#include "stm/Stm.h"

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

/// Returns mean RMRs per committed transaction, or nullopt if some thread
/// exhausted its attempt budget (the livelock case described above).
std::optional<double> rmrsPerCommit(TmKind Kind, MemoryModelKind Model,
                                    unsigned N, uint64_t CommitsPerThread,
                                    uint64_t AttemptBudget) {
  auto M = createTm(Kind, /*NumObjects=*/1, N);
  RmrSimulator Sim(Model, N);
  RoundRobinInterleaver Sched(N);
  std::atomic<uint64_t> TotalRmrs{0};
  std::atomic<bool> Bailed{false};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < N; ++T) {
    Workers.emplace_back([&, T] {
      Instrumentation Instr(T, &Sim, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        uint64_t Attempts = 0;
        for (uint64_t C = 0;
             C < CommitsPerThread && !Bailed.load(std::memory_order_relaxed);
             ++C) {
          // Retry until committed; failed attempts charge RMRs too.
          for (;;) {
            if (++Attempts > AttemptBudget) {
              Bailed.store(true, std::memory_order_relaxed);
              break;
            }
            M->txBegin(T);
            uint64_t V;
            if (!M->txRead(T, 0, V))
              continue;
            if (!M->txWrite(T, 0, V + 1))
              continue;
            if (M->txCommit(T))
              break;
          }
          if (Bailed.load(std::memory_order_relaxed)) {
            if (M->txActive(T))
              M->txAbort(T);
            break;
          }
        }
      }
      Sched.retire(T);
      TotalRmrs.fetch_add(Instr.totalRmrs());
    });
  }
  for (std::thread &W : Workers)
    W.join();

  if (Bailed.load())
    return std::nullopt;
  return static_cast<double>(TotalRmrs.load()) /
         static_cast<double>(N * CommitsPerThread);
}

void benchRmrTmSingleItem(bench::BenchContext &Ctx) {
  const uint64_t Commits = Ctx.pick<uint64_t>(25, 10);
  const uint64_t AttemptBudget = Ctx.pick<uint64_t>(3000, 1500);
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4}, {1, 2}));

  // CC write-back tells the same story as write-through here; two models
  // keep the run short.
  for (MemoryModelKind Model :
       {MemoryModelKind::MM_CcWriteThrough, MemoryModelKind::MM_Dsm}) {
    for (TmKind Kind : allTmKinds()) {
      for (unsigned N : Counts) {
        std::optional<double> Rmrs =
            rmrsPerCommit(Kind, Model, N, Commits, AttemptBudget);
        bench::ResultRow Row;
        Row.Tm = tmKindName(Kind);
        Row.Threads = N;
        Row.Params = {bench::param("model", memoryModelName(Model)),
                      bench::param("commits_per_thread", Commits)};
        Row.Metric = "rmrs_per_commit";
        Row.Unit = "rmr";
        if (Rmrs) {
          // Deterministic under the round-robin schedule; one evaluation.
          Row.Stats = bench::SampleStats::once(*Rmrs);
        } else {
          Row.Status = "livelock";
          Row.Stats = bench::SampleStats::compute({});
        }
        Ctx.report(Row);
      }
    }
  }
}

} // namespace

PTM_BENCHMARK("rmr_tm_single_item", "rmr",
              "Theorem 9: n processes committing transactions on one "
              "t-object through a strictly serializable, strongly "
              "progressive CAS-based TM incur Omega(n log n) total RMRs "
              "(per-commit cost grows with n; glock is the blocking escape)",
              benchRmrTmSingleItem);
