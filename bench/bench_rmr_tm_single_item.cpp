//===-- bench/bench_rmr_tm_single_item.cpp - Experiment E9 ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E9 — Theorem 9 without the mutex detour: RMRs of single-item
/// transactions.**
///
/// Theorem 9 is stated for TMs directly: any strictly serializable,
/// strongly progressive TM built from reads, writes and conditional
/// primitives has executions with n processes on ONE t-object costing
/// Ω(n log n) total RMRs. Here n threads each commit read-modify-write
/// transactions on the single object under a dense round-robin event
/// schedule; we report RMRs per *committed* transaction (failed attempts
/// are part of the cost, exactly as in the bound).
///
/// Expected shape: every CAS-based TM's per-commit RMR cost grows with n
/// (conflict retries — the conditional-primitive cost); `glock`, whose
/// transactions never abort, pays only its lock hand-off.
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"
#include "runtime/RmrSimulator.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

/// Sentinel result: the cell livelocked (see below).
constexpr double kLivelocked = -1.0;

/// Returns mean RMRs per committed transaction, or kLivelocked if some
/// thread exhausted its attempt budget. A perfectly fair event schedule
/// keeps symmetric contenders in lockstep: TLRW's read-then-upgrade
/// pattern livelocks this way (all readers acquire, all upgrades fail,
/// all retry in phase) — a real property of reader-upgrade locking that
/// wall-clock schedulers mask with timing noise, reported honestly here.
double rmrsPerCommit(TmKind Kind, MemoryModelKind Model, unsigned N,
                     uint64_t CommitsPerThread) {
  auto M = createTm(Kind, /*NumObjects=*/1, N);
  RmrSimulator Sim(Model, N);
  RoundRobinInterleaver Sched(N);
  std::atomic<uint64_t> TotalRmrs{0};
  std::atomic<bool> Bailed{false};
  constexpr uint64_t kAttemptBudget = 3000;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < N; ++T) {
    Workers.emplace_back([&, T] {
      Instrumentation Instr(T, &Sim, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        uint64_t Attempts = 0;
        for (uint64_t C = 0;
             C < CommitsPerThread && !Bailed.load(std::memory_order_relaxed);
             ++C) {
          // Retry until committed; failed attempts charge RMRs too.
          for (;;) {
            if (++Attempts > kAttemptBudget) {
              Bailed.store(true, std::memory_order_relaxed);
              break;
            }
            M->txBegin(T);
            uint64_t V;
            if (!M->txRead(T, 0, V))
              continue;
            if (!M->txWrite(T, 0, V + 1))
              continue;
            if (M->txCommit(T))
              break;
          }
          if (Bailed.load(std::memory_order_relaxed)) {
            if (M->txActive(T))
              M->txAbort(T);
            break;
          }
        }
      }
      Sched.retire(T);
      TotalRmrs.fetch_add(Instr.totalRmrs());
    });
  }
  for (std::thread &W : Workers)
    W.join();

  if (Bailed.load())
    return kLivelocked;
  return static_cast<double>(TotalRmrs.load()) /
         static_cast<double>(N * CommitsPerThread);
}

std::string formatCell(double Value) {
  return Value == kLivelocked ? "livelock" : formatDouble(Value, 1);
}

} // namespace

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E9  Theorem 9 directly: RMRs per committed single-item\n";
  OS << "    transaction, n threads, dense round-robin schedule\n";
  OS << "==============================================================\n\n";

  const std::vector<unsigned> ThreadCounts = {1, 2, 4};
  const uint64_t Commits = 25;

  // CC write-back tells the same story as write-through here; two models
  // keep the run short.
  for (MemoryModelKind Model :
       {MemoryModelKind::MM_CcWriteThrough, MemoryModelKind::MM_Dsm}) {
    std::vector<std::string> Header = {std::string("tm [") +
                                       memoryModelName(Model) + "]"};
    for (unsigned N : ThreadCounts)
      Header.push_back("n=" + formatInt(uint64_t{N}));

    TablePrinter Table(Header);
    for (TmKind Kind : allTmKinds()) {
      std::vector<std::string> Row = {tmKindName(Kind)};
      for (unsigned N : ThreadCounts)
        Row.push_back(formatCell(rmrsPerCommit(Kind, Model, N, Commits)));
      Table.addRow(Row);
    }
    Table.print(OS);
  }

  OS << "All of these TMs use CAS (a conditional primitive), so Theorem 9\n"
     << "applies: per-commit RMR cost must grow under contention. glock's\n"
     << "flat-ish row is the blocking escape (its 'transactions' never\n"
     << "retry; the cost hides in lock hand-off latency instead).\n"
     << "'livelock' marks cells where symmetric contenders stayed in\n"
     << "lockstep under the fair schedule — TLRW's reader-upgrade pattern\n"
     << "does this; progressiveness promises abort-on-conflict, not\n"
     << "livelock-freedom.\n";
  OS.flush();
  return 0;
}
