//===-- bench/bench_validation_steps.cpp - Experiment E1 ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E1 — Theorem 3(1): step complexity of read-only transactions.**
///
/// A single thread runs one read-only transaction over m t-objects and we
/// count the *steps* (base-object primitive applications) of every t-read,
/// per TM. The paper proves that any opaque, weak-DAP, weak-invisible-read,
/// sequentially-progressive TM must pay Ω(m²) total — the subject TM
/// (orec-incr) matches that from above; each TM that drops one hypothesis
/// stays linear.
///
/// Metrics per (TM, m), all deterministic model counts:
///   total_steps          — the m-read transaction plus tryCommit
///   last_read_steps      — the m-th (last) t-read alone
///   mean_steps_per_read  — average over the m t-reads
///
/// Shape check: orec-incr total_steps(m=512) / total_steps(m=64) should be
/// ~64x (quadratic); every other TM ~8x (linear).
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "runtime/Instrumentation.h"
#include "stm/Stm.h"

#include <vector>

using namespace ptm;

namespace {

struct Measurement {
  uint64_t TotalSteps = 0;
  uint64_t LastReadSteps = 0;
  double MeanReadSteps = 0.0;
};

Measurement measure(TmKind Kind, unsigned M) {
  auto Tm = createTm(Kind, M, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);

  Measurement Result;
  Tm->txBegin(0);
  uint64_t ReadSum = 0;
  for (ObjectId Obj = 0; Obj < M; ++Obj) {
    uint64_t V;
    Instr.beginOp();
    bool Ok = Tm->txRead(0, Obj, V);
    OpStats S = Instr.endOp();
    if (!Ok)
      return Result; // Cannot happen solo; keeps the harness honest.
    ReadSum += S.Steps;
    if (Obj + 1 == M)
      Result.LastReadSteps = S.Steps;
  }
  Instr.beginOp();
  (void)Tm->txCommit(0);
  OpStats Commit = Instr.endOp();

  Result.TotalSteps = ReadSum + Commit.Steps;
  Result.MeanReadSteps = static_cast<double>(ReadSum) / M;
  return Result;
}

void benchValidationSteps(bench::BenchContext &Ctx) {
  const std::vector<unsigned> Sizes =
      Ctx.pick<std::vector<unsigned>>({2, 4, 8, 16, 32, 64, 128, 256, 512},
                                      {2, 8, 32});

  for (TmKind Kind : allTmKinds()) {
    for (unsigned M : Sizes) {
      Measurement R = measure(Kind, M);
      bench::ResultRow Row;
      Row.Tm = tmKindName(Kind);
      Row.Threads = 1;
      Row.Params = {bench::param("m", uint64_t{M})};

      Row.Metric = "total_steps";
      Row.Unit = "steps";
      Row.Stats = bench::SampleStats::once(static_cast<double>(R.TotalSteps));
      Ctx.report(Row);

      Row.Metric = "last_read_steps";
      Row.Stats =
          bench::SampleStats::once(static_cast<double>(R.LastReadSteps));
      Ctx.report(Row);

      Row.Metric = "mean_steps_per_read";
      Row.Stats = bench::SampleStats::once(R.MeanReadSteps);
      Ctx.report(Row);
    }
  }
}

} // namespace

PTM_BENCHMARK("validation_steps", "steps",
              "Theorem 3(1): read-only transactions of m t-reads cost "
              "Theta(m^2) steps on the subject TM (orec-incr/orec-eager), "
              "Theta(m) on every TM that drops a hypothesis",
              benchValidationSteps);
