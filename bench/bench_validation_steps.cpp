//===-- bench/bench_validation_steps.cpp - Experiment E1 ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E1 — Theorem 3(1): step complexity of read-only transactions.**
///
/// A single thread runs one read-only transaction over m t-objects and we
/// count the *steps* (base-object primitive applications) of every t-read,
/// per TM. The paper proves that any opaque, weak-DAP, weak-invisible-read,
/// sequentially-progressive TM must pay Ω(m²) total — the subject TM
/// (orec-incr) matches that from above; each TM that drops one hypothesis
/// stays linear.
///
/// Series reported (rows = m, columns = TMs):
///   Table 1: total steps of the m-read transaction (+ tryCommit)
///   Table 2: steps of the m-th (last) t-read alone
///   Table 3: mean steps per t-read
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <vector>

using namespace ptm;

namespace {

struct Measurement {
  uint64_t TotalSteps = 0;
  uint64_t LastReadSteps = 0;
  double MeanReadSteps = 0.0;
};

Measurement measure(TmKind Kind, unsigned M) {
  auto Tm = createTm(Kind, M, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);

  Measurement Result;
  Tm->txBegin(0);
  uint64_t ReadSum = 0;
  for (ObjectId Obj = 0; Obj < M; ++Obj) {
    uint64_t V;
    Instr.beginOp();
    bool Ok = Tm->txRead(0, Obj, V);
    OpStats S = Instr.endOp();
    if (!Ok)
      return Result; // Cannot happen solo; keeps the harness honest.
    ReadSum += S.Steps;
    if (Obj + 1 == M)
      Result.LastReadSteps = S.Steps;
  }
  Instr.beginOp();
  (void)Tm->txCommit(0);
  OpStats Commit = Instr.endOp();

  Result.TotalSteps = ReadSum + Commit.Steps;
  Result.MeanReadSteps = static_cast<double>(ReadSum) / M;
  return Result;
}

} // namespace

int main() {
  RawOStream &OS = outs();
  OS << "==============================================================\n";
  OS << "E1  Theorem 3(1): read-only transaction step complexity\n";
  OS << "    (steps = base-object primitive applications; 1 thread,\n";
  OS << "    solo execution; orec-incr is the theorem's subject TM)\n";
  OS << "==============================================================\n\n";

  const std::vector<unsigned> Sizes = {2, 4, 8, 16, 32, 64, 128, 256, 512};

  std::vector<std::string> Header = {"m"};
  for (TmKind Kind : allTmKinds())
    Header.push_back(tmKindName(Kind));

  TablePrinter Total(Header);
  TablePrinter Last(Header);
  TablePrinter Mean(Header);

  for (unsigned M : Sizes) {
    std::vector<std::string> RowT = {formatInt(uint64_t{M})};
    std::vector<std::string> RowL = {formatInt(uint64_t{M})};
    std::vector<std::string> RowM = {formatInt(uint64_t{M})};
    for (TmKind Kind : allTmKinds()) {
      Measurement R = measure(Kind, M);
      RowT.push_back(formatInt(R.TotalSteps));
      RowL.push_back(formatInt(R.LastReadSteps));
      RowM.push_back(formatDouble(R.MeanReadSteps, 2));
    }
    Total.addRow(RowT);
    Last.addRow(RowL);
    Mean.addRow(RowM);
  }

  OS << "Total steps, m-read transaction (expect Theta(m^2) for orec-incr,"
     << " Theta(m) elsewhere):\n";
  Total.print(OS);

  OS << "Steps of the m-th (last) t-read (expect Theta(m) for orec-incr,"
     << " O(1) elsewhere):\n";
  Last.print(OS);

  OS << "Mean steps per t-read:\n";
  Mean.print(OS);

  OS << "Shape check: orec-incr(m=512) total / orec-incr(m=64) total should"
     << " be ~64x (quadratic), others ~8x (linear).\n";
  OS.flush();
  return 0;
}
