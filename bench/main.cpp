//===-- bench/main.cpp - Shared entry point for all benchmarks ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Every benchmark binary (each single-experiment bench_* target and the
/// consolidated run_all driver) links this main together with one or more
/// registration translation units. The CLI, reporters and JSON output all
/// live in the harness (src/bench/Runner.h).
///
//===----------------------------------------------------------------------===//

#include "bench/Runner.h"

int main(int argc, char **argv) {
  return ptm::bench::benchMain(argc, argv);
}
