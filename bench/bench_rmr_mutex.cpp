//===-- bench/bench_rmr_mutex.cpp - Experiment E3 -------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// **E3 — Theorem 7/9: RMR cost of mutual exclusion from a TM.**
///
/// n threads perform passages through each lock while every base-object
/// access is charged by the RMR simulator, for each of the paper's three
/// memory models (CC write-through, CC write-back, DSM). The schedule is
/// controlled: a round-robin interleaver serializes execution one
/// shared-memory event at a time across all n threads, so contention is
/// dense and deterministic regardless of host core count (the paper's
/// bounds quantify over schedules; the OS's bursty schedule on a small
/// host would hide all contention). Metric: rmrs_per_passage.
///
/// What the theory predicts:
///  * MCS (fetch-and-store — an *unconditional* primitive, outside
///    Theorem 9's hypotheses) stays O(1) per passage in CC and DSM.
///  * CLH is O(1) in CC but spins remotely in DSM.
///  * TAS/TTAS/ticket grow with n in CC (global invalidations) and TAS
///    burns RMRs continuously in DSM.
///  * TmMutex = Algorithm 1: the Done/Succ/Lock handshake adds only O(1)
///    RMRs per passage on top of the inner TM (Theorem 7); the growth
///    with n comes from the inner CAS-based TM's retries on the single
///    object X — the contention cost Theorem 9 proves unavoidable for
///    TMs built from conditional primitives.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"
#include "runtime/RmrSimulator.h"
#include "stm/Tm.h"

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

struct LockCfg {
  std::string Label;
  std::function<std::unique_ptr<Mutex>(unsigned)> Make;
};

std::vector<LockCfg> lockConfigs() {
  std::vector<LockCfg> Locks;
  for (MutexKind Kind : allMutexKinds())
    Locks.push_back({mutexKindName(Kind),
                     [Kind](unsigned N) { return createMutex(Kind, N); }});
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_Norec,
                      TmKind::TK_OrecIncremental, TmKind::TK_GlobalLock}) {
    std::string Label = std::string("tm(") + tmKindName(Kind) + ")";
    Locks.push_back(
        {Label, [Kind](unsigned N) { return createTmMutex(Kind, N); }});
  }
  return Locks;
}

double rmrsPerPassage(const LockCfg &Cfg, MemoryModelKind Model, unsigned N,
                      uint64_t PassagesPerThread) {
  auto Lock = Cfg.Make(N);
  RmrSimulator Sim(Model, N);
  RoundRobinInterleaver Sched(N);
  BaseObject CsCell(0); // One shared write inside the critical section.
  std::atomic<uint64_t> TotalRmrs{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < N; ++T) {
    Workers.emplace_back([&, T] {
      Instrumentation Instr(T, &Sim, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        for (uint64_t P = 0; P < PassagesPerThread; ++P) {
          Lock->enter(T);
          CsCell.write(T);
          Lock->exit(T);
        }
      }
      Sched.retire(T);
      TotalRmrs.fetch_add(Instr.totalRmrs());
    });
  }
  for (std::thread &W : Workers)
    W.join();

  return static_cast<double>(TotalRmrs.load()) /
         static_cast<double>(N * PassagesPerThread);
}

void benchRmrMutex(bench::BenchContext &Ctx) {
  const uint64_t Passages = Ctx.pick<uint64_t>(60, 12);
  const std::vector<unsigned> Counts =
      Ctx.threadCounts(Ctx.pick<std::vector<unsigned>>({1, 2, 4, 8}, {1, 2}));
  const std::vector<LockCfg> Locks = lockConfigs();

  for (MemoryModelKind Model :
       {MemoryModelKind::MM_CcWriteThrough, MemoryModelKind::MM_CcWriteBack,
        MemoryModelKind::MM_Dsm}) {
    for (const LockCfg &Cfg : Locks) {
      for (unsigned N : Counts) {
        bench::ResultRow Row;
        Row.Tm = Cfg.Label;
        Row.Threads = N;
        Row.Params = {bench::param("model", memoryModelName(Model)),
                      bench::param("passages_per_thread", Passages)};
        Row.Metric = "rmrs_per_passage";
        Row.Unit = "rmr";
        // The round-robin schedule makes the count deterministic; one
        // evaluation is exact.
        Row.Stats =
            bench::SampleStats::once(rmrsPerPassage(Cfg, Model, N, Passages));
        Ctx.report(Row);
      }
    }
  }
}

} // namespace

PTM_BENCHMARK("rmr_mutex", "rmr",
              "Theorem 7: Algorithm 1 turns a strongly progressive TM into "
              "a mutex with O(1) RMR handshake overhead; Theorem 9: the "
              "inner CAS-based TM's RMR cost must grow with contention "
              "(queue locks are the baselines, under CC-WT/CC-WB/DSM)",
              benchRmrMutex);
